//! Property-based tests on the core invariants.
//!
//! The load-bearing properties of the paper's design, checked under
//! randomized inputs:
//!
//! * grant validation is *sound*: no request outside a declared grant ever
//!   validates (fault isolation, §4.1);
//! * the analyzer's extraction *agrees with the driver*: the operations the
//!   JIT predicts are exactly the operations the driver performs (§4.1);
//! * two-stage translation round-trips;
//! * `_IOC` encode/decode round-trips;
//! * the VRAM allocator never double-allocates or leaks.

use proptest::prelude::*;

use paradice_devfs::ioc::{IoctlCmd, IoctlDir, MAX_IOC_SIZE};
use paradice_hypervisor::grants::{GrantTable, MemOpGrant, MemOpRequest};
use paradice_mem::pagetable::{FlatGpaSpace, GuestPageTables};
use paradice_mem::{Access, GuestPhysAddr, GuestVirtAddr, PAGE_SIZE};

proptest! {
    /// Soundness: a copy request validates only if some declared grant of
    /// the same direction fully contains it.
    #[test]
    fn grant_validation_is_sound(
        grant_addr in 0u64..1 << 32,
        grant_len in 0u64..1 << 16,
        req_addr in 0u64..1 << 32,
        req_len in 0u64..1 << 16,
        to_guest in any::<bool>(),
        req_to_guest in any::<bool>(),
    ) {
        let mut table = GrantTable::new();
        let grant_op = if to_guest {
            MemOpGrant::CopyToGuest { addr: GuestVirtAddr::new(grant_addr), len: grant_len }
        } else {
            MemOpGrant::CopyFromGuest { addr: GuestVirtAddr::new(grant_addr), len: grant_len }
        };
        let reference = table.declare(vec![grant_op]).unwrap();
        let request = if req_to_guest {
            MemOpRequest::CopyToGuest { addr: GuestVirtAddr::new(req_addr), len: req_len }
        } else {
            MemOpRequest::CopyFromGuest { addr: GuestVirtAddr::new(req_addr), len: req_len }
        };
        let allowed = table.validate(reference, &request).is_ok();
        let contained = to_guest == req_to_guest
            && req_addr >= grant_addr
            && req_addr.checked_add(req_len)
                .is_some_and(|end| end <= grant_addr.saturating_add(grant_len));
        prop_assert_eq!(allowed, contained);
    }

    /// Revoked grants never validate anything.
    #[test]
    fn revoked_grants_are_dead(addr in 0u64..1 << 30, len in 1u64..4096) {
        let mut table = GrantTable::new();
        let reference = table
            .declare(vec![MemOpGrant::CopyToGuest {
                addr: GuestVirtAddr::new(addr),
                len,
            }])
            .unwrap();
        table.revoke(reference);
        let request = MemOpRequest::CopyToGuest { addr: GuestVirtAddr::new(addr), len };
        prop_assert!(table.validate(reference, &request).is_err());
    }

    /// `_IOC` fields survive the 32-bit encoding.
    #[test]
    fn ioc_roundtrip(
        dir in 0u8..4,
        ty in any::<u8>(),
        nr in any::<u8>(),
        size in 0u32..=MAX_IOC_SIZE,
    ) {
        let dir = match dir {
            0 => IoctlDir::None,
            1 => IoctlDir::Read,
            2 => IoctlDir::Write,
            _ => IoctlDir::ReadWrite,
        };
        let cmd = IoctlCmd::new(dir, ty, nr, size);
        prop_assert_eq!(cmd.dir(), dir);
        prop_assert_eq!(cmd.ty(), ty);
        prop_assert_eq!(cmd.nr(), nr);
        prop_assert_eq!(cmd.size(), size);
        prop_assert_eq!(IoctlCmd(cmd.raw()), cmd);
    }

    /// Guest page tables: whatever is mapped translates back exactly, and
    /// unmapped neighbours stay unmapped.
    #[test]
    fn page_table_roundtrip(pages in proptest::collection::btree_map(0u64..512, 0u64..4096, 1..40)) {
        let mut space = FlatGpaSpace::new(4096);
        let mut pt = GuestPageTables::new(&mut space).unwrap();
        for (&vpage, &ppage) in &pages {
            pt.map(
                &mut space,
                GuestVirtAddr::new(vpage * PAGE_SIZE),
                GuestPhysAddr::new(ppage * PAGE_SIZE),
                Access::RW,
            )
            .unwrap();
        }
        for (&vpage, &ppage) in &pages {
            let mapping = pt.walk(&space, GuestVirtAddr::new(vpage * PAGE_SIZE)).unwrap();
            prop_assert_eq!(mapping.gpa.page_number(), ppage);
        }
        // A page just past the mapped set is unmapped (unless it happens to
        // be in the set).
        let probe = pages.keys().max().unwrap() + 1;
        if !pages.contains_key(&probe) {
            prop_assert!(pt.walk(&space, GuestVirtAddr::new(probe * PAGE_SIZE)).is_err());
        }
    }

    /// The VRAM allocator hands out disjoint, in-range extents and frees
    /// them fully.
    #[test]
    fn vram_allocator_invariants(sizes in proptest::collection::vec(1u64..64 * 1024, 1..20)) {
        use paradice_drivers::gpu::bo::VramAllocator;
        let total = 16 * 1024 * 1024u64;
        let mut vram = VramAllocator::new(0, total);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for &size in &sizes {
            if let Ok(offset) = vram.alloc(size) {
                let span = size.div_ceil(PAGE_SIZE) * PAGE_SIZE;
                // In range.
                prop_assert!(offset + span <= total);
                // Disjoint from everything live.
                for &(o, s) in &live {
                    prop_assert!(offset + span <= o || o + s <= offset);
                }
                live.push((offset, span));
            } // exhaustion is legal
        }
        let free_before = vram.free_bytes();
        let allocated: u64 = live.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(free_before + allocated, total);
        for (offset, _) in live {
            vram.free(offset).unwrap();
        }
        prop_assert_eq!(vram.free_bytes(), total);
    }

    /// The analyzer's JIT prediction matches the driver's actual memory
    /// operations for randomized CS submissions (the §4.1 ground truth).
    #[test]
    fn analyzer_predicts_cs_ops(
        num_chunks in 1u32..5,
        lens in proptest::collection::vec(1u32..64, 5),
    ) {
        use paradice_analyzer::extract::{extract_command, Extraction};
        use paradice_analyzer::jit::{evaluate_slice, UserReader};
        use paradice_drivers::gpu::driver::RADEON_CS;
        use paradice_drivers::gpu::ir::radeon_handler_3_2_0;

        // A synthetic user memory with CS args at 0x100, headers at 0x200,
        // chunk data high up.
        struct Flat(Vec<u8>);
        impl UserReader for Flat {
            fn read_user(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), ()> {
                let start = addr as usize;
                let end = start.checked_add(buf.len()).ok_or(())?;
                buf.copy_from_slice(self.0.get(start..end).ok_or(())?);
                Ok(())
            }
        }
        let mut mem = vec![0u8; 1 << 16];
        let args_at = 0x100u64;
        let headers_at = 0x200u64;
        mem[args_at as usize..args_at as usize + 8]
            .copy_from_slice(&headers_at.to_le_bytes());
        mem[args_at as usize + 8..args_at as usize + 12]
            .copy_from_slice(&num_chunks.to_le_bytes());
        for (i, &length_dw) in lens.iter().enumerate().take(num_chunks as usize) {
            let header = headers_at as usize + i * 16;
            let data_ptr = 0x1000u64 + i as u64 * 0x400;
            mem[header..header + 8].copy_from_slice(&data_ptr.to_le_bytes());
            mem[header + 8..header + 12].copy_from_slice(&length_dw.to_le_bytes());
            mem[header + 12..header + 16].copy_from_slice(&1u32.to_le_bytes()); // IB
        }

        let extraction = extract_command(&radeon_handler_3_2_0(), RADEON_CS.raw()).unwrap();
        let Extraction::Jit { slice, .. } = extraction else {
            panic!("CS must be a JIT command");
        };
        let ops = evaluate_slice(&slice, RADEON_CS.raw(), args_at, &mut Flat(mem)).unwrap();
        // Expected: args-in + per-chunk (header + data) + args-out.
        prop_assert_eq!(ops.len(), 1 + 2 * num_chunks as usize + 1);
        prop_assert_eq!(ops[0].addr, args_at);
        prop_assert_eq!(ops[0].len, 16);
        for i in 0..num_chunks as usize {
            let header_op = &ops[1 + 2 * i];
            prop_assert_eq!(header_op.addr, headers_at + i as u64 * 16);
            prop_assert_eq!(header_op.len, 16);
            let data_op = &ops[2 + 2 * i];
            prop_assert_eq!(data_op.addr, 0x1000 + i as u64 * 0x400);
            prop_assert_eq!(data_op.len, u64::from(lens[i]) * 4);
        }
    }

    /// netmap ring arithmetic: free slots + used slots == capacity − 1.
    #[test]
    fn ring_accounting(head in 0u32..256, tail in 0u32..256) {
        use paradice_drivers::netmap::NUM_SLOTS;
        let used = (head + NUM_SLOTS - tail) % NUM_SLOTS;
        let free = NUM_SLOTS - 1 - used;
        prop_assert!(used < NUM_SLOTS);
        prop_assert_eq!(used + free, NUM_SLOTS - 1);
    }
}

// Deterministic companion: the wire protocol fuzz (decode never panics and
// encode∘decode is identity — exercised with random bytes).
proptest! {
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = paradice_cvd::proto::WireRequest::decode(&bytes);
        let _ = paradice_cvd::proto::WireResponse::decode(&bytes);
        let _ = paradice_cvd::proto::WireSignal::decode(&bytes);
    }
}
