//! Fast path × failure: the cross-layer fast path (grant-declaration
//! cache, vectored hypercalls, pipelined ring) must change performance
//! only, never semantics. These tests pin the interaction with §7.1
//! fault injection — cached grant references die with the driver VM, no
//! stale reference survives recovery, a faulted op mid-batch applies
//! none of its memory ops — and replay the lint gate over a traced
//! fast-path run: cached-grant runs still satisfy
//! used ⊆ declared ⊆ envelope.

use std::cell::RefCell;
use std::rc::Rc;

use paradice::gpu_ioctl::{info, RADEON_INFO};
use paradice::prelude::*;
use paradice_analyzer::lint::conformance::{self, ObservedIoctl};
use paradice_analyzer::lint::{replay, Diagnostic, Severity};
use paradice_bench::tracing::record_fastpath_workload_trace;
use paradice_cvd::frontend::DEFAULT_OP_DEADLINE_NS;
use paradice_drivers::all_handlers;
use paradice_faults::{FaultKind, FaultPlan, Trigger};
use paradice_hypervisor::audit::BlockedBy;
use paradice_trace::{parse_jsonl, TraceEvent};

fn fast_machine(devices: &[DeviceSpec]) -> Machine {
    let mut builder = Machine::builder()
        .exec(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .guests([GuestSpec::linux(), GuestSpec::linux()])
        .fastpath(true);
    for &spec in devices {
        builder = builder.device(spec);
    }
    builder.build().expect("machine builds")
}

/// Arms a single-shot fault on the `nth` dispatch of `op` *from now on*.
fn armed(m: &mut Machine, kind: FaultKind, op: &str, nth: u64) -> Rc<RefCell<FaultPlan>> {
    let mut plan = FaultPlan::new();
    plan.arm(kind, Trigger::OnOp { op: op.to_owned(), nth });
    let plan = Rc::new(RefCell::new(plan));
    assert!(m.arm_faults(plan.clone()), "Paradice mode arms faults");
    plan
}

/// Stages a 16-byte `RADEON_INFO(DEVICE_ID)` request at a fresh buffer;
/// the response bytes (8..16) start zeroed.
fn stage_info(m: &mut Machine, task: TaskId) -> paradice_mem::GuestVirtAddr {
    let scratch = m.alloc_buffer(task, 256).expect("scratch");
    let mut req = [0u8; 16];
    req[0..4].copy_from_slice(&info::DEVICE_ID.to_le_bytes());
    m.write_mem(task, scratch, &req).expect("stage request");
    scratch
}

fn info_result(m: &mut Machine, task: TaskId, scratch: paradice_mem::GuestVirtAddr) -> u64 {
    let mut out = [0u8; 16];
    m.read_mem(task, scratch, &mut out).expect("read result");
    u64::from_le_bytes(out[8..16].try_into().expect("len 8"))
}

fn cache_len(m: &Machine) -> usize {
    m.frontend(0).expect("frontend").borrow().grant_cache_len()
}

fn cache_hits(m: &Machine) -> u64 {
    m.frontend(0).expect("frontend").borrow().stats().grant_cache_hits
}

#[test]
fn cached_grant_refs_are_revoked_when_the_driver_vm_fails() {
    let mut m = fast_machine(&[DeviceSpec::gpu()]);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    let scratch = stage_info(&mut m, task);
    for _ in 0..5 {
        m.ioctl(task, fd, RADEON_INFO, scratch.raw()).unwrap();
    }
    // The cache holds a live declaration between ops …
    assert!(cache_len(&m) >= 1, "warm-up must populate the grant cache");
    let guest = m.guest_vms()[0];
    assert!(
        m.hv().borrow().outstanding_grants(guest) >= 1,
        "a cached declaration stays outstanding between ops"
    );
    // … until the watchdog marks the driver VM failed.
    armed(&mut m, FaultKind::Hang, "ioctl", 0);
    assert_eq!(m.ioctl(task, fd, RADEON_INFO, scratch.raw()), Err(Errno::Etimedout));
    assert!(m.driver_vm_failed());
    assert_eq!(
        m.hv().borrow().outstanding_grants(guest),
        0,
        "containment must revoke cached grant refs with everything else"
    );
    assert_eq!(cache_len(&m), 0, "the frontend cache must not hold dead refs");
}

#[test]
fn no_stale_cached_ref_survives_driver_vm_recovery() {
    let mut m = fast_machine(&[DeviceSpec::gpu()]);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    let scratch = stage_info(&mut m, task);
    for _ in 0..3 {
        m.ioctl(task, fd, RADEON_INFO, scratch.raw()).unwrap();
    }
    armed(&mut m, FaultKind::DriverPanic, "ioctl", 0);
    assert_eq!(m.ioctl(task, fd, RADEON_INFO, scratch.raw()), Err(Errno::Etimedout));
    assert!(m.driver_vm_failed());

    m.recover_driver_vm().expect("driver VM reboots");
    assert_eq!(cache_len(&m), 0, "recovery must start from an empty cache");
    // The pre-crash handle died with the VM; nothing it cached may serve.
    assert_eq!(m.ioctl(task, fd, RADEON_INFO, scratch.raw()), Err(Errno::Ebadf));
    // A fresh session works and re-populates the cache from cold.
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    let scratch = stage_info(&mut m, task);
    let hits = cache_hits(&m);
    m.ioctl(task, fd, RADEON_INFO, scratch.raw()).unwrap();
    assert_eq!(cache_hits(&m), hits, "first post-recovery op is a cold declare");
    m.ioctl(task, fd, RADEON_INFO, scratch.raw()).unwrap();
    assert_eq!(cache_hits(&m), hits + 1, "second op hits the rebuilt cache");
    // Every outstanding grant is accounted for by the live cache — no
    // stale pre-crash reference lingers in the hypervisor.
    let guest = m.guest_vms()[0];
    assert_eq!(m.hv().borrow().outstanding_grants(guest), cache_len(&m));
}

#[test]
fn a_faulted_op_mid_batch_applies_none_of_its_memory_ops() {
    let mut m = fast_machine(&[DeviceSpec::gpu()]);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    // Control: a successful op writes the device id into bytes 8..16.
    let control = stage_info(&mut m, task);
    m.ioctl(task, fd, RADEON_INFO, control.raw()).unwrap();
    assert_ne!(info_result(&mut m, task, control), 0, "control op must write its result");

    // Four pipelined ops, each with its own result buffer; the wild
    // memory op fires on the third dispatch of the batch.
    let buffers: Vec<_> = (0..4).map(|_| stage_info(&mut m, task)).collect();
    armed(&mut m, FaultKind::WildMemOp, "ioctl", 2);
    let before = m.hv().borrow().audit().count_blocked_by(BlockedBy::GrantCheck);
    for buffer in &buffers {
        m.ioctl_pipelined(task, fd, RADEON_INFO, buffer.raw()).unwrap();
    }
    let results = m.flush_pipeline(task).expect("drain runs containment, not transport failure");
    assert_eq!(results.len(), buffers.len(), "every submission gets a result");
    assert!(results[0].is_ok() && results[1].is_ok(), "{results:?}");
    assert!(results[2].is_err() && results[3].is_err(), "{results:?}");

    // The ungranted access was blocked and audited, the VM contained.
    assert!(m.hv().borrow().audit().count_blocked_by(BlockedBy::GrantCheck) > before);
    assert!(m.driver_vm_failed());
    // All-or-nothing: the faulted op's buffer saw none of its memory ops,
    // and the op queued behind it was refused before dispatch.
    assert_eq!(info_result(&mut m, task, buffers[2]), 0, "faulted op must apply nothing");
    assert_eq!(info_result(&mut m, task, buffers[3]), 0, "queued op must apply nothing");
    assert_ne!(info_result(&mut m, task, buffers[0]), 0, "pre-fault entries completed");
    // And no grant — cached or batch-scoped — survives containment.
    let guest = m.guest_vms()[0];
    assert_eq!(m.hv().borrow().outstanding_grants(guest), 0);
    assert_eq!(cache_len(&m), 0);
}

#[test]
fn hang_detection_and_fail_fast_are_unchanged_by_the_fast_path() {
    let mut m = fast_machine(&[DeviceSpec::Mouse]);
    armed(&mut m, FaultKind::Hang, "read", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/input/event0").unwrap();
    let buf = m.alloc_buffer(task, 64).unwrap();
    let t0 = m.now_ns();
    assert_eq!(m.read(task, fd, buf, 16), Err(Errno::Etimedout));
    assert!(
        m.now_ns() - t0 >= DEFAULT_OP_DEADLINE_NS,
        "the watchdog still waits out its deadline with the fast path on"
    );
    assert!(m.driver_vm_failed());
    // Fail-fast: no forwarding, no second deadline.
    let forwarded = m.frontend(0).unwrap().borrow().stats().ops_forwarded;
    let t1 = m.now_ns();
    assert_eq!(m.read(task, fd, buf, 16), Err(Errno::Eio));
    assert_eq!(m.frontend(0).unwrap().borrow().stats().ops_forwarded, forwarded);
    assert!(m.now_ns() - t1 < DEFAULT_OP_DEADLINE_NS);
}

#[test]
fn a_driver_oops_fails_one_op_but_cached_grants_stay_valid() {
    let mut m = fast_machine(&[DeviceSpec::gpu()]);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    let scratch = stage_info(&mut m, task);
    m.ioctl(task, fd, RADEON_INFO, scratch.raw()).unwrap();
    let len = cache_len(&m);
    assert!(len >= 1);
    // An oops kills the faulting thread, not the VM: the cache keeps its
    // declarations and the very next op is served from it.
    armed(&mut m, FaultKind::DriverOops, "ioctl", 0);
    assert_eq!(m.ioctl(task, fd, RADEON_INFO, scratch.raw()), Err(Errno::Eio));
    assert!(!m.driver_vm_failed(), "an oops kills the thread, not the VM");
    assert_eq!(cache_len(&m), len, "no containment, no purge");
    let hits = cache_hits(&m);
    m.ioctl(task, fd, RADEON_INFO, scratch.raw()).unwrap();
    assert_eq!(cache_hits(&m), hits + 1, "the surviving cache serves the retry");
}

#[test]
fn recovery_restores_service_for_every_device_class_with_the_fast_path_on() {
    let mut m = fast_machine(&[
        DeviceSpec::gpu(),
        DeviceSpec::Mouse,
        DeviceSpec::Camera,
        DeviceSpec::Audio,
        DeviceSpec::Netmap,
    ]);
    armed(&mut m, FaultKind::DriverPanic, "poll", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/input/event0").unwrap();
    assert_eq!(m.poll(task, fd), Err(Errno::Etimedout));
    assert!(m.driver_vm_failed());

    m.recover_driver_vm().expect("driver VM reboots");
    assert!(!m.driver_vm_failed());
    assert_eq!(m.poll(task, fd), Err(Errno::Ebadf), "pre-crash handles are dead");
    for path in [
        "/dev/dri/card0",
        "/dev/input/event0",
        "/dev/video0",
        "/dev/snd/pcmC0D0p",
        "/dev/netmap",
    ] {
        let fd = m.open(task, path).unwrap_or_else(|e| panic!("{path}: {e:?}"));
        m.close(task, fd).unwrap_or_else(|e| panic!("{path}: {e:?}"));
    }
    // The cached-grant path works end to end on the rebooted VM.
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    let scratch = stage_info(&mut m, task);
    let hits = cache_hits(&m);
    m.ioctl(task, fd, RADEON_INFO, scratch.raw()).unwrap();
    m.ioctl(task, fd, RADEON_INFO, scratch.raw()).unwrap();
    assert_eq!(cache_hits(&m), hits + 1);
    // The other guest was never disturbed.
    let task1 = m.spawn_process(Some(1)).unwrap();
    let fd1 = m.open(task1, "/dev/video0").unwrap();
    m.close(task1, fd1).unwrap();
}

/// Replays a JSONL trace through the span checks plus the per-device
/// static-envelope check, mirroring `paradice-lint --replay`.
fn replay_trace(text: &str) -> Vec<Diagnostic> {
    let events = parse_jsonl(text).expect("trace parses");
    let mut diags = Vec::new();
    let summary = replay::check_trace(&events, &mut diags);
    let handlers = all_handlers();
    let mut by_driver: Vec<(&str, Vec<ObservedIoctl>)> = Vec::new();
    for (device, obs) in summary.ioctls {
        let name = match device.as_str() {
            "/dev/dri/card0" => "radeon-3.2.0",
            "/dev/input/event0" | "/dev/input/event1" => "evdev",
            other => panic!("fast-path workload touched unexpected device {other}"),
        };
        match by_driver.iter_mut().find(|(n, _)| *n == name) {
            Some((_, list)) => list.push(obs),
            None => by_driver.push((name, vec![obs])),
        }
    }
    for (name, observed) in &by_driver {
        let (_, handler) = handlers
            .iter()
            .find(|(n, _)| n == name)
            .expect("registered handler");
        conformance::check_replay(name, handler, observed, &mut diags);
    }
    diags
}

#[test]
fn a_traced_fastpath_run_replays_with_zero_error_class_findings() {
    let jsonl = record_fastpath_workload_trace();
    let events = parse_jsonl(&jsonl).expect("trace parses");
    // The run actually exercised the cache: one cold declare, then hits.
    let hits = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::GrantCache { hit: true, .. }))
        .count();
    let cold = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::GrantCache { hit: false, .. }))
        .count();
    assert!(hits >= 4, "expected cache hits in the trace, got {hits}");
    assert!(cold >= 1, "expected a cold declare in the trace, got {cold}");
    // The lint gate is caching-oblivious: cached-grant spans still satisfy
    // used ⊆ declared ⊆ envelope, so no error-class finding fires.
    let diags = replay_trace(&jsonl);
    let errors: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(errors.is_empty(), "fast-path trace must replay clean: {errors:?}");
}

#[test]
fn evicting_a_cached_shape_with_an_op_in_flight_defers_the_revoke() {
    // The scenario the bounded-model checker's `cache-revocation` property
    // flagged (and `tests/fixtures/verify/cache-evict-inflight.fixture`
    // pins): fill the cache to capacity, put an op in flight on the
    // FIFO-oldest shape, then declare one more shape so the cache evicts
    // the oldest entry. The evicted ref is attached to the pipelined op —
    // ownership must transfer to that op (revoke at completion), never
    // revoke mid-flight.
    use paradice_cvd::frontend::GRANT_CACHE_CAP;

    let mut m = fast_machine(&[DeviceSpec::gpu()]);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();

    // Fill the cache with GRANT_CACHE_CAP distinct op shapes (one scratch
    // buffer each). Shape 0 is the FIFO-oldest entry afterwards.
    let mut scratches = Vec::with_capacity(GRANT_CACHE_CAP + 1);
    for _ in 0..=GRANT_CACHE_CAP {
        scratches.push(stage_info(&mut m, task));
    }
    for scratch in &scratches[..GRANT_CACHE_CAP] {
        m.ioctl(task, fd, RADEON_INFO, scratch.raw()).unwrap();
    }
    assert_eq!(cache_len(&m), GRANT_CACHE_CAP, "cache filled to capacity");
    let guest = m.guest_vms()[0];
    assert_eq!(m.hv().borrow().outstanding_grants(guest), GRANT_CACHE_CAP);

    // An op on the oldest shape rides the pipeline (cache hit: it borrows
    // the cached ref), then one more *new* shape forces the eviction of
    // exactly that entry while the op is still in flight.
    m.ioctl_pipelined(task, fd, RADEON_INFO, scratches[0].raw()).unwrap();
    m.ioctl_pipelined(task, fd, RADEON_INFO, scratches[GRANT_CACHE_CAP].raw()).unwrap();
    assert_eq!(cache_len(&m), GRANT_CACHE_CAP, "eviction kept the cache at capacity");
    assert_eq!(
        m.hv().borrow().outstanding_grants(guest),
        GRANT_CACHE_CAP + 1,
        "the evicted ref must stay outstanding while its op is in flight"
    );

    // Both ops complete: the hit on the evicted shape validated against a
    // still-live ref, and the transferred ref is revoked at completion.
    let results = m.flush_pipeline(task).expect("transport stays up");
    assert_eq!(results.len(), 2);
    for result in &results {
        assert!(result.is_ok(), "pipelined op failed after eviction: {result:?}");
    }
    assert_eq!(
        m.hv().borrow().outstanding_grants(guest),
        cache_len(&m),
        "after the flush every outstanding grant is a live cache entry"
    );
    assert_eq!(cache_len(&m), GRANT_CACHE_CAP);
}
