//! Driver-VM fault injection, watchdog detection, crash containment, and
//! recovery (paper §7.1, Table 3): "we injected faults in the device
//! drivers running inside the driver VM … the driver VM crashed but the
//! guest VMs continued to run. We then simply rebooted the driver VM and
//! resumed."

use std::cell::RefCell;
use std::rc::Rc;

use paradice::app::drm::DrmClient;
use paradice::gpu_ioctl::gem_domain;
use paradice::prelude::*;
use paradice_cvd::frontend::DEFAULT_OP_DEADLINE_NS;
use paradice_faults::{FaultKind, FaultPlan, Trigger};
use paradice_hypervisor::audit::BlockedBy;
use paradice_hypervisor::hv::HvError;
use paradice_hypervisor::GrantRef;

fn plain_machine(devices: &[DeviceSpec]) -> Machine {
    let mut builder = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .guest(GuestSpec::linux())
        .guest(GuestSpec::linux());
    for &spec in devices {
        builder = builder.device(spec);
    }
    builder.build().expect("machine builds")
}

/// Arms a single-shot fault on the `nth` dispatch of `op`.
fn armed(m: &mut Machine, kind: FaultKind, op: &str, nth: u64) -> Rc<RefCell<FaultPlan>> {
    let mut plan = FaultPlan::new();
    plan.arm(kind, Trigger::OnOp { op: op.to_owned(), nth });
    let plan = Rc::new(RefCell::new(plan));
    assert!(m.arm_faults(plan.clone()), "Paradice mode arms faults");
    plan
}

#[test]
fn a_hung_driver_times_out_instead_of_wedging_the_guest() {
    let mut m = plain_machine(&[DeviceSpec::Mouse]);
    armed(&mut m, FaultKind::Hang, "read", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/input/event0").unwrap();
    let buf = m.alloc_buffer(task, 64).unwrap();
    let t0 = m.now_ns();
    // The guest process unblocks with an errno — never a hang.
    assert_eq!(m.read(task, fd, buf, 16), Err(Errno::Etimedout));
    assert!(
        m.now_ns() - t0 >= DEFAULT_OP_DEADLINE_NS,
        "the watchdog waits out its deadline on the virtual clock"
    );
    assert!(m.driver_vm_failed(), "the watchdog marks the driver VM");
}

#[test]
fn the_circuit_breaker_fails_fast_after_detection() {
    let mut m = plain_machine(&[DeviceSpec::Mouse]);
    armed(&mut m, FaultKind::Hang, "read", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/input/event0").unwrap();
    let buf = m.alloc_buffer(task, 64).unwrap();
    assert_eq!(m.read(task, fd, buf, 16), Err(Errno::Etimedout));
    // Later operations do not forward, do not wait, do not hang.
    let forwarded = m.frontend(0).unwrap().borrow().stats().ops_forwarded;
    let t1 = m.now_ns();
    assert_eq!(m.read(task, fd, buf, 16), Err(Errno::Eio));
    assert_eq!(
        m.frontend(0).unwrap().borrow().stats().ops_forwarded,
        forwarded,
        "fail-fast must not touch the wire"
    );
    assert!(
        m.now_ns() - t1 < DEFAULT_OP_DEADLINE_NS,
        "fail-fast must not wait out another deadline"
    );
}

/// The breaker is half-open, not latched: after containment it fails fast
/// through an exponentially growing backoff window on the virtual clock,
/// re-arms (doubled) while the driver VM stays contained, and closes again
/// on the first successful probe once the VM is back — without an explicit
/// `recover_driver_vm`/frontend reset.
#[test]
fn the_breaker_half_opens_with_exponential_backoff() {
    use paradice_cvd::frontend::BREAKER_BASE_BACKOFF_NS;
    let mut m = plain_machine(&[DeviceSpec::Mouse]);
    armed(&mut m, FaultKind::MalformedResponse, "read", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/input/event0").unwrap();
    let buf = m.alloc_buffer(task, 64).unwrap();
    assert_eq!(m.read(task, fd, buf, 16), Err(Errno::Eio));
    assert!(m.driver_vm_failed());
    let fe = m.frontend(0).unwrap();
    assert!(fe.borrow().breaker_open());
    assert_eq!(fe.borrow().breaker_backoff_ns(), BREAKER_BASE_BACKOFF_NS);

    // Inside the backoff window: fail fast, nothing on the wire.
    let forwarded = fe.borrow().stats().ops_forwarded;
    assert_eq!(m.read(task, fd, buf, 16), Err(Errno::Eio));
    assert_eq!(fe.borrow().stats().ops_forwarded, forwarded);

    // The window expires while the VM is still contained: a probe cannot
    // succeed, so the breaker stays open — still fast, still off the
    // wire — and the window doubles.
    m.clock().advance(BREAKER_BASE_BACKOFF_NS + 1);
    assert_eq!(m.read(task, fd, buf, 16), Err(Errno::Eio));
    assert_eq!(fe.borrow().stats().ops_forwarded, forwarded);
    assert_eq!(fe.borrow().breaker_backoff_ns(), 2 * BREAKER_BASE_BACKOFF_NS);

    // The containment clears out-of-band (the single-shot corruption is
    // spent; the hypervisor re-admits the VM) and the doubled window
    // expires: the next op runs as the half-open probe, succeeds, and
    // closes the breaker with the backoff reset.
    m.hv().borrow_mut().clear_driver_vm_failed(m.driver_vm());
    m.clock().advance(2 * BREAKER_BASE_BACKOFF_NS + 1);
    assert!(m.poll(task, fd).is_ok(), "probe must reach the driver");
    assert!(!fe.borrow().breaker_open());
    assert_eq!(fe.borrow().breaker_backoff_ns(), 0);
    assert!(fe.borrow().stats().ops_forwarded > forwarded);
    // Closed means closed: the next op forwards normally too.
    assert!(m.poll(task, fd).is_ok());
}

#[test]
fn a_driver_panic_revokes_grants_and_refuses_the_dead_vm() {
    let mut m = plain_machine(&[DeviceSpec::gpu()]);
    armed(&mut m, FaultKind::DriverPanic, "ioctl", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    let arg = m.alloc_buffer(task, 4096).unwrap();
    m.write_mem(task, arg, &1u32.to_le_bytes()).unwrap();
    assert_eq!(
        m.ioctl(task, fd, paradice::gpu_ioctl::RADEON_INFO, arg.raw()),
        Err(Errno::Etimedout)
    );
    assert!(m.driver_vm_failed());
    // Containment: no grant survives the crash …
    let guest = m.guest_vms()[0];
    assert_eq!(m.hv().borrow().outstanding_grants(guest), 0);
    // … and the dead VM's hypercalls are refused before any grant logic.
    let err = m.hv().borrow_mut().hc_copy_to_guest(
        m.driver_vm(),
        guest,
        paradice_mem::GuestPhysAddr::new(0),
        GuestVirtAddr::new(0x4000),
        b"x",
        GrantRef(u32::MAX),
    );
    assert!(
        matches!(err, Err(HvError::DriverVmFailed { .. })),
        "{err:?}"
    );
}

#[test]
fn a_driver_oops_fails_one_op_but_the_vm_survives() {
    let mut m = plain_machine(&[DeviceSpec::gpu()]);
    armed(&mut m, FaultKind::DriverOops, "ioctl", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    let arg = m.alloc_buffer(task, 4096).unwrap();
    m.write_mem(task, arg, &1u32.to_le_bytes()).unwrap();
    let cmd = paradice::gpu_ioctl::RADEON_INFO;
    assert_eq!(m.ioctl(task, fd, cmd, arg.raw()), Err(Errno::Eio));
    assert!(!m.driver_vm_failed(), "an oops kills the thread, not the VM");
    // The very next operation succeeds without any recovery.
    m.write_mem(task, arg, &1u32.to_le_bytes()).unwrap();
    assert!(m.ioctl(task, fd, cmd, arg.raw()).is_ok());
}

#[test]
fn a_wild_memory_op_is_blocked_audited_and_contained() {
    let mut m = plain_machine(&[DeviceSpec::gpu()]);
    armed(&mut m, FaultKind::WildMemOp, "ioctl", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    let arg = m.alloc_buffer(task, 4096).unwrap();
    m.write_mem(task, arg, &1u32.to_le_bytes()).unwrap();
    let before = m.hv().borrow().audit().count_blocked_by(BlockedBy::GrantCheck);
    assert_eq!(
        m.ioctl(task, fd, paradice::gpu_ioctl::RADEON_INFO, arg.raw()),
        Err(Errno::Etimedout)
    );
    assert!(
        m.hv().borrow().audit().count_blocked_by(BlockedBy::GrantCheck) > before,
        "the ungranted access must be audited"
    );
    assert!(m.driver_vm_failed());
}

#[test]
fn corrupted_responses_fail_the_op_and_contain_the_vm() {
    for kind in [FaultKind::MalformedResponse, FaultKind::TruncatedResponse] {
        let mut m = plain_machine(&[DeviceSpec::gpu()]);
        armed(&mut m, kind, "ioctl", 0);
        let task = m.spawn_process(Some(0)).unwrap();
        let fd = m.open(task, "/dev/dri/card0").unwrap();
        let arg = m.alloc_buffer(task, 4096).unwrap();
        m.write_mem(task, arg, &1u32.to_le_bytes()).unwrap();
        assert_eq!(
            m.ioctl(task, fd, paradice::gpu_ioctl::RADEON_INFO, arg.raw()),
            Err(Errno::Eio),
            "{kind}"
        );
        assert!(m.driver_vm_failed(), "{kind}: garbage on the wire = corrupt VM");
    }
}

#[test]
fn a_delayed_response_times_out_without_killing_the_driver() {
    let mut m = plain_machine(&[DeviceSpec::gpu()]);
    armed(&mut m, FaultKind::DelayDelivery, "ioctl", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    let arg = m.alloc_buffer(task, 4096).unwrap();
    m.write_mem(task, arg, &1u32.to_le_bytes()).unwrap();
    let cmd = paradice::gpu_ioctl::RADEON_INFO;
    assert_eq!(m.ioctl(task, fd, cmd, arg.raw()), Err(Errno::Etimedout));
    // The response did arrive (late): the driver is alive, no containment.
    assert!(!m.driver_vm_failed());
    m.write_mem(task, arg, &1u32.to_le_bytes()).unwrap();
    assert!(m.ioctl(task, fd, cmd, arg.raw()).is_ok());
}

#[test]
fn a_dropped_response_is_indistinguishable_from_a_hang() {
    let mut m = plain_machine(&[DeviceSpec::gpu()]);
    armed(&mut m, FaultKind::DropDelivery, "ioctl", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    let arg = m.alloc_buffer(task, 4096).unwrap();
    m.write_mem(task, arg, &1u32.to_le_bytes()).unwrap();
    assert_eq!(
        m.ioctl(task, fd, paradice::gpu_ioctl::RADEON_INFO, arg.raw()),
        Err(Errno::Etimedout)
    );
    // The frontend cannot tell a dropped delivery from a wedged driver;
    // the conservative answer is containment plus recovery.
    assert!(m.driver_vm_failed());
    m.recover_driver_vm().unwrap();
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    m.close(task, fd).unwrap();
}

#[test]
fn recovery_restores_service_for_every_device_class() {
    let mut m = plain_machine(&[
        DeviceSpec::gpu(),
        DeviceSpec::Mouse,
        DeviceSpec::Camera,
        DeviceSpec::Audio,
        DeviceSpec::Netmap,
    ]);
    armed(&mut m, FaultKind::DriverPanic, "poll", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/input/event0").unwrap();
    assert_eq!(m.poll(task, fd), Err(Errno::Etimedout));
    assert!(m.driver_vm_failed());

    m.recover_driver_vm().expect("driver VM reboots");
    assert!(!m.driver_vm_failed());
    // Handles from before the crash died with the VM.
    assert_eq!(m.poll(task, fd), Err(Errno::Ebadf));
    // Every device class opens and closes again — full service.
    for path in [
        "/dev/dri/card0",
        "/dev/input/event0",
        "/dev/video0",
        "/dev/snd/pcmC0D0p",
        "/dev/netmap",
    ] {
        let fd = m.open(task, path).unwrap_or_else(|e| panic!("{path}: {e:?}"));
        m.close(task, fd).unwrap_or_else(|e| panic!("{path}: {e:?}"));
    }
    // And the other guest was never disturbed in the first place.
    let task1 = m.spawn_process(Some(1)).unwrap();
    let fd1 = m.open(task1, "/dev/video0").unwrap();
    m.close(task1, fd1).unwrap();
}

#[test]
fn recovery_works_with_data_isolation_enabled() {
    let mut m = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: true,
        })
        .guest(GuestSpec::linux())
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .build()
        .unwrap();
    // Guest 0 renders before the crash.
    let t0 = m.spawn_process(Some(0)).unwrap();
    let drm = DrmClient::open(&mut m, t0).unwrap();
    let fb = drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    drm.submit_render(&mut m, 100, fb).unwrap();
    drm.wait_idle(&mut m, fb).unwrap();

    armed(&mut m, FaultKind::DriverPanic, "ioctl", 0);
    assert!(drm.submit_render(&mut m, 100, fb).is_err());
    assert!(m.driver_vm_failed());

    // §7.1 with §4.2 both on: protected regions are re-created.
    m.recover_driver_vm()
        .expect("recovery must work with data isolation enabled");
    assert!(!m.driver_vm_failed());

    // Both guests get full GPU service on the rebooted driver VM.
    for g in 0..2 {
        let task = m.spawn_process(Some(g)).unwrap();
        let drm = DrmClient::open(&mut m, task).unwrap();
        let fb = drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
        drm.submit_render(&mut m, 100, fb).unwrap();
        drm.wait_idle(&mut m, fb).unwrap();
    }
}

#[test]
fn fault_and_recovery_are_visible_in_the_trace() {
    let mut m = plain_machine(&[DeviceSpec::Mouse]);
    let tracer = m.enable_tracing();
    armed(&mut m, FaultKind::Hang, "read", 0);
    let task = m.spawn_process(Some(0)).unwrap();
    let fd = m.open(task, "/dev/input/event0").unwrap();
    let buf = m.alloc_buffer(task, 64).unwrap();
    assert_eq!(m.read(task, fd, buf, 16), Err(Errno::Etimedout));
    m.recover_driver_vm().unwrap();
    let jsonl = tracer.to_jsonl();
    assert!(jsonl.contains("\"type\":\"fault_injected\""), "{jsonl}");
    assert!(jsonl.contains("\"kind\":\"hang\""), "{jsonl}");
    assert!(jsonl.contains("\"type\":\"driver_vm_failed\""), "{jsonl}");
    assert!(jsonl.contains("\"type\":\"driver_vm_recovered\""), "{jsonl}");
}
