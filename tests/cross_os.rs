//! Cross-OS paravirtualization (paper §3.2.2, §5.1): "we have successfully
//! deployed Paradice with a Linux driver VM, a FreeBSD guest VM and a Linux
//! guest VM running a different major version of Linux."

use paradice::app::drm::DrmClient;
use paradice::gpu_ioctl::{gem_domain, info};
use paradice::os;
use paradice::prelude::*;

fn mixed_machine() -> Machine {
    Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .guest(GuestSpec::linux()) // Linux 3.2.0
        .guest(GuestSpec::linux_2_6_35()) // a different major version
        .guest(GuestSpec::freebsd()) // FreeBSD
        .device(DeviceSpec::gpu())
        .build()
        .expect("mixed-OS machine builds")
}

#[test]
fn three_oses_share_one_linux_driver_vm() {
    let mut m = mixed_machine();
    for guest in 0..3 {
        let task = m.spawn_process(Some(guest)).unwrap();
        let drm = DrmClient::open(&mut m, task)
            .unwrap_or_else(|e| panic!("guest {guest} open failed: {e}"));
        assert_eq!(
            drm.info(&mut m, info::DEVICE_ID).unwrap(),
            0x6779,
            "guest {guest} sees the Linux driver's device"
        );
        let fb = drm
            .gem_create(&mut m, 4 * PAGE_SIZE, gem_domain::VRAM)
            .unwrap();
        drm.submit_render(&mut m, 500, fb).unwrap();
        drm.wait_idle(&mut m, fb).unwrap();
    }
}

#[test]
fn freebsd_mmap_works_through_the_kernel_hook() {
    // §5.1: "To support mmap and its page fault handler, we added about 12
    // LoC to the FreeBSD kernel to pass the virtual address range to the CVD
    // frontend." The machine invokes the hook automatically, so the same
    // application code maps buffers on FreeBSD.
    let mut m = mixed_machine();
    let task = m.spawn_process(Some(2)).unwrap(); // the FreeBSD guest
    let drm = DrmClient::open(&mut m, task).unwrap();
    let bo = drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    let data = m.alloc_buffer(task, 64).unwrap();
    m.write_mem(task, data, b"bsd-bytes").unwrap();
    drm.gem_pwrite(&mut m, bo, 0, data, 9).unwrap();
    let map = drm.gem_map(&mut m, bo, PAGE_SIZE).unwrap();
    let mut seen = [0u8; 9];
    m.read_mem(task, map, &mut seen).unwrap();
    assert_eq!(&seen, b"bsd-bytes");
}

#[test]
fn freebsd_mmap_without_hook_is_rejected() {
    // Calling the frontend's mmap directly without the kernel hook (the
    // 12-LoC patch) must fail — the address range is genuinely needed.
    let mut m = mixed_machine();
    let task = m.spawn_process(Some(2)).unwrap();
    let drm = DrmClient::open(&mut m, task).unwrap();
    let bo = drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    // Fetch the mmap cookie.
    let scratch = m.alloc_buffer(task, 64).unwrap();
    let mut req = [0u8; 16];
    req[0..4].copy_from_slice(&bo.to_le_bytes());
    m.write_mem(task, scratch, &req).unwrap();
    m.ioctl(task, drm.fd, paradice::gpu_ioctl::RADEON_GEM_MMAP, scratch.raw())
        .unwrap();
    let frontend = m.frontend(2).unwrap();
    // Reach the frontend below the machine API: no hook has been recorded.
    let p_pt = paradice_mem::pagetable::GuestPageTables::from_root(
        paradice_mem::GuestPhysAddr::new(0),
    );
    let result = frontend.borrow_mut().mmap(
        task,
        p_pt,
        3, // the frontend fd for this open
        GuestVirtAddr::new(0x7000_0000),
        PAGE_SIZE,
        u64::from(bo) << 28,
        Access::RW,
    );
    assert_eq!(result, Err(Errno::Einval));
}

#[test]
fn op_tables_differ_but_cover_drivers_everywhere() {
    for personality in [
        OsPersonality::LINUX_2_6_35,
        OsPersonality::LINUX_3_2_0,
        OsPersonality::FreeBsd,
    ] {
        assert!(os::supports_driver_critical_ops(personality));
    }
    let (added, removed) =
        os::op_list_delta(OsPersonality::LINUX_2_6_35, OsPersonality::LINUX_3_2_0);
    assert_eq!(added.len(), 1, "the 3.x delta is tiny (the 14-LoC update)");
    assert!(removed.is_empty());
}

#[test]
fn device_info_modules_export_identity_to_every_guest() {
    // §5.1: each guest loads small device info modules and sees the real
    // device's PCI identity on a virtual PCI bus.
    let m = mixed_machine();
    for guest in 0..3 {
        let bus = m.bus(guest).expect("virtual PCI bus");
        let (_, module) = bus
            .find_class(paradice_devfs::DeviceClass::Gpu)
            .expect("GPU info module plugged");
        assert_eq!(module.pci.pci_id(), "1002:6779");
        let listing = bus.scan();
        assert!(listing[0].contains("ATI Radeon HD 6450"));
    }
}

#[test]
fn errnos_cross_the_boundary_verbatim() {
    let mut m = mixed_machine();
    let task = m.spawn_process(Some(1)).unwrap();
    // ENOENT for unknown devices.
    assert_eq!(m.open(task, "/dev/nope"), Err(Errno::Enoent));
    // ENOTTY for unknown ioctls, straight from the Linux driver to the
    // 2.6.35 guest.
    let drm = DrmClient::open(&mut m, task).unwrap();
    assert_eq!(
        m.ioctl(task, drm.fd, paradice_devfs::ioc::io(b'z', 0x77), 0),
        Err(Errno::Enotty)
    );
}
