//! Counterexample-fixture regression suite (satellite of the verify PR).
//!
//! Every `.fixture` under `tests/fixtures/verify/` was emitted by
//! `paradice-verify --mutant … --emit-fixtures` — a counterexample the
//! checker found against a deliberately seeded bug. Each fixture is a
//! regression test in both directions:
//!
//! * replayed against the **real** kernels it must pass — the bug the
//!   mutant models stays fixed;
//! * replayed under its **recorded mutant** it must still fail — the
//!   checker (and this replay path) can still see the bug.
//!
//! If a fixture stops failing under its mutant, the replay logic rotted;
//! if it starts failing on the real code, a regression shipped.

use paradice_verify::fixture::Fixture;
use paradice_verify::replay_fixture;
use paradice_verify::report::Mutant;

fn fixtures_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/verify")
        .canonicalize()
        .expect("tests/fixtures/verify exists")
}

fn load_all() -> Vec<(String, Fixture)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(fixtures_dir()).expect("readable fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("fixture") {
            continue;
        }
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("readable fixture");
        let fixture = Fixture::parse(&text)
            .unwrap_or_else(|error| panic!("{name}: malformed fixture: {error}"));
        out.push((name, fixture));
    }
    out
}

#[test]
fn fixture_corpus_is_present_and_wellformed() {
    let fixtures = load_all();
    assert!(
        fixtures.len() >= 4,
        "expected the committed fixture corpus, found {}",
        fixtures.len(),
    );
    for (name, fixture) in &fixtures {
        assert!(
            !fixture.reason.is_empty(),
            "{name}: fixture has an empty reason"
        );
        let mutant = fixture
            .mutant
            .as_deref()
            .unwrap_or_else(|| panic!("{name}: committed fixtures must record their mutant"));
        assert!(
            Mutant::from_name(mutant).is_some(),
            "{name}: unknown mutant {mutant:?}"
        );
        // The canonical file name matches the content.
        assert_eq!(*name, fixture.file_name(), "{name}: misnamed fixture file");
    }
}

#[test]
fn every_fixture_replays_clean_on_the_real_kernels() {
    for (name, fixture) in load_all() {
        if let Err(reason) = replay_fixture(&fixture, None) {
            panic!("{name}: violates the real kernels — a fixed bug regressed: {reason}");
        }
    }
}

#[test]
fn every_fixture_still_fails_under_its_recorded_mutant() {
    for (name, fixture) in load_all() {
        let mutant = Mutant::from_name(fixture.mutant.as_deref().expect("recorded mutant"))
            .expect("known mutant");
        assert!(
            replay_fixture(&fixture, Some(mutant)).is_err(),
            "{name}: no longer fails under {} — the replay path went blind",
            mutant.name(),
        );
    }
}
