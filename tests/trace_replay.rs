//! The recorded-trace conformance gate.
//!
//! Records the reference workload under paradice-trace, replays it through
//! the `RP`/`CF` lint passes, and pins both directions of the gate: the
//! genuine recording must come back with zero error-class findings, and
//! the doctored fixture (one `copy_to_guest` moved outside its grant) must
//! fire `RP001`. The committed fixture is also pinned byte-for-byte to a
//! fresh recording so it can never drift from the code that produces it.

use std::path::PathBuf;

use paradice_analyzer::lint::conformance::ObservedIoctl;
use paradice_analyzer::lint::{conformance, replay, DiagCode, Diagnostic, Severity};
use paradice_bench::tracing::record_workload_trace;
use paradice_drivers::all_handlers;
use paradice_trace::parse_jsonl;

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Replays a JSONL trace through the span checks plus the per-device
/// static-envelope check, mirroring `paradice-lint --replay`.
fn replay_trace(text: &str) -> Vec<Diagnostic> {
    let events = parse_jsonl(text).expect("trace parses");
    let mut diags = Vec::new();
    let summary = replay::check_trace(&events, &mut diags);
    let handlers = all_handlers();
    let mut by_driver: Vec<(&str, Vec<ObservedIoctl>)> = Vec::new();
    for (device, obs) in summary.ioctls {
        let name = match device.as_str() {
            "/dev/dri/card0" => "radeon-3.2.0",
            "/dev/input/event0" | "/dev/input/event1" => "evdev",
            other => panic!("reference workload touched unexpected device {other}"),
        };
        match by_driver.iter_mut().find(|(n, _)| *n == name) {
            Some((_, list)) => list.push(obs),
            None => by_driver.push((name, vec![obs])),
        }
    }
    for (name, observed) in &by_driver {
        let (_, handler) = handlers
            .iter()
            .find(|(n, _)| n == name)
            .expect("registered handler");
        conformance::check_replay(name, handler, observed, &mut diags);
    }
    diags
}

fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

#[test]
fn bench_recorded_trace_replays_with_zero_error_class_findings() {
    let jsonl = record_workload_trace();
    let diags = replay_trace(&jsonl);
    // OG002-class info findings about over-wide upstream ioctl numbers are
    // expected (and allowlisted in the binary); errors are not.
    assert!(
        errors(&diags).is_empty(),
        "reference workload must replay clean, got: {:?}",
        errors(&diags)
    );
}

#[test]
fn committed_fixture_is_byte_identical_to_a_fresh_recording() {
    assert_eq!(
        fixture("recorded_trace.jsonl"),
        record_workload_trace(),
        "tests/fixtures/recorded_trace.jsonl drifted from the recorder; \
         regenerate it with `cargo run -p paradice-bench --bin experiments \
         -- --trace tests/fixtures/recorded_trace.jsonl`"
    );
}

#[test]
fn doctored_fixture_fires_the_replay_finding() {
    let diags = replay_trace(&fixture("doctored_trace.jsonl"));
    assert!(
        diags
            .iter()
            .any(|d| d.code == DiagCode::Rp001 && d.severity == Severity::Error),
        "doctored trace must fire RP001, got: {diags:?}"
    );
    // The static envelope agrees: the same rogue copy is outside the
    // handler's declared grant set, so CF001 fires too.
    assert!(
        diags.iter().any(|d| d.code == DiagCode::Cf001),
        "doctored trace must also fail the static envelope: {diags:?}"
    );
}

#[test]
fn tampered_fixture_fires_rp006() {
    let diags = replay_trace(&fixture("doctored_rp006.jsonl"));
    let rp006: Vec<_> = diags.iter().filter(|d| d.code == DiagCode::Rp006).collect();
    // Span 1 is tampered yet completes ok=true — exactly one RP006. Span 2
    // is tampered but correctly rejected with EINVAL, so it stays clean.
    assert_eq!(rp006.len(), 1, "tampered fixture must fire RP006 once: {diags:?}");
    assert_eq!(rp006[0].severity, Severity::Error);
    assert!(
        !diags.iter().any(|d| d.code == DiagCode::Rp001),
        "the tampered span's mem_op stays inside its grant: {diags:?}"
    );
}

#[test]
fn tracing_disabled_by_default_and_zero_cost() {
    use paradice::prelude::*;
    use paradice_bench::{build, spawn_app, Config};
    // Two identical machines; tracing enabled on one. Virtual time and
    // results must be identical: recording never advances the clock.
    let run = |traced: bool| {
        let mut machine = build(Config::Paradice, &[DeviceSpec::Mouse], 1);
        let tracer = traced.then(|| machine.enable_tracing());
        let task = spawn_app(&mut machine, Config::Paradice);
        let fd = machine.open(task, "/dev/input/event0").expect("open");
        for _ in 0..10 {
            machine.poll(task, fd).expect("poll");
        }
        (machine.now_ns(), tracer.map(|t| t.len()).unwrap_or(0))
    };
    let (t_plain, n_plain) = run(false);
    let (t_traced, n_traced) = run(true);
    assert_eq!(t_plain, t_traced, "tracing must not perturb virtual time");
    assert_eq!(n_plain, 0);
    assert!(n_traced > 0, "enabled tracer must have recorded events");
}
