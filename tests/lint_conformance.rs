//! The lint suite's ship gate, exercised end to end.
//!
//! Three claims are enforced here, all offline and deterministic:
//!
//! 1. Every shipped driver's handler IR is lint-clean, or every surviving
//!    finding carries a recorded allowlist justification.
//! 2. The seeded buggy fixture handler trips **every** static pass with its
//!    exact diagnostic code — the passes demonstrably fire.
//! 3. The runtime conformance pass catches an injected ungranted operation,
//!    both when replayed directly and when read back out of a real
//!    `paradice_hypervisor::audit::AuditLog` text export produced by the
//!    attack suite.

use paradice::attack;
use paradice::prelude::*;
use paradice_analyzer::lint::conformance::{
    check_audit, check_replay, parse_audit_text, ObservedIoctl,
};
use paradice_analyzer::lint::{fixtures, DiagCode};
use paradice_analyzer::{
    apply_allowlist, extract_command, has_errors, lint_handler, Extraction, OpKind, ResolvedOp,
    Severity,
};
use paradice_drivers::{all_handlers, lint_allowlist};
use paradice_hypervisor::audit::{AuditEvent, AuditLog};
use paradice_hypervisor::VmId;

#[test]
fn shipped_drivers_are_lint_clean_or_allowlisted() {
    let allowlist = lint_allowlist();
    for (name, handler) in all_handlers() {
        let mut diags = lint_handler(name, handler);
        apply_allowlist(&mut diags, &allowlist);
        assert!(
            !has_errors(&diags),
            "driver {name} ships with lint errors:\n{}",
            diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .map(|d| d.render())
                .collect::<Vec<_>>()
                .join("\n"),
        );
        // Allowlisting must document, not hide: anything downgraded still
        // carries its recorded reason.
        for diag in diags.iter().filter(|d| d.allowlisted) {
            assert!(
                diag.message.contains("[allowlisted:"),
                "allowlisted finding lost its justification: {}",
                diag.render()
            );
        }
    }
}

#[test]
fn seeded_fixture_trips_every_pass_with_exact_codes() {
    let diags = lint_handler(fixtures::FIXTURE_DRIVER, &fixtures::buggy_handler());
    let fired = |code: DiagCode, cmd: u32| {
        diags
            .iter()
            .any(|d| d.code == code && d.command == Some(cmd))
    };
    for (code, cmd) in [
        (DiagCode::Df001, fixtures::FIX_DOUBLE_FETCH.raw()),
        (DiagCode::Df002, fixtures::FIX_REFETCH.raw()),
        (DiagCode::Og001, fixtures::FIX_OVER_GRANT.raw()),
        (DiagCode::Og002, fixtures::FIX_DEAD_DIR.raw()),
        (DiagCode::Sh001, fixtures::FIX_BIG_LOOP.raw()),
        (DiagCode::Sh002, fixtures::FIX_OPAQUE_LOOP.raw()),
        (DiagCode::Sh003, fixtures::FIX_RECURSION.raw()),
        (DiagCode::Sh004, fixtures::FIX_DOUBLE_FETCH.raw()),
        (DiagCode::Sh005, fixtures::FIX_DEEP_CHAIN.raw()),
        (DiagCode::Sh006, fixtures::FIX_UNKNOWN_FN.raw()),
        (DiagCode::Df001, fixtures::FIX_XHELPER_DF.raw()),
        (DiagCode::Ta001, fixtures::FIX_OVERFLOW_LEN.raw()),
    ] {
        assert!(
            fired(code, cmd),
            "fixture did not trip {code:?} on cmd {cmd:#010x}; got:\n{}",
            diags
                .iter()
                .map(|d| d.render())
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
}

/// Differential gate on the real drivers: the flow-sensitive double-fetch
/// rewrite must cover every finding the old syntactic walker produced, and
/// must not invent error-class findings the syntactic pass never hinted at
/// — shipped drivers that were double-fetch-clean stay clean.
#[test]
fn flow_double_fetch_differential_on_shipped_drivers() {
    use paradice_analyzer::extract::specialize_command;
    use paradice_analyzer::lint::double_fetch;
    for (name, handler) in all_handlers() {
        for cmd in handler.commands() {
            let Ok(slice) = specialize_command(handler, cmd) else {
                continue;
            };
            let mut syntactic = Vec::new();
            double_fetch::check_syntactic(name, cmd, &slice, &mut syntactic);
            let mut flow = Vec::new();
            double_fetch::check(name, cmd, handler, &mut flow);
            for old in &syntactic {
                assert!(
                    flow.iter().any(|new| new.command == old.command
                        && (new.code == old.code
                            || (old.code == DiagCode::Df002 && new.code == DiagCode::Df001))),
                    "{name}: flow pass lost {} on cmd {cmd:#010x}",
                    old.render(),
                );
            }
            for new in flow.iter().filter(|d| d.severity == Severity::Error) {
                assert!(
                    syntactic.iter().any(|old| old.command == new.command),
                    "{name}: flow pass invented an error on a syntactically-clean \
                     command: {}",
                    new.render(),
                );
            }
        }
    }
}

/// The conformance replay must flag an executed operation no grant covers
/// (`CF001`) on a real shipped handler.
#[test]
fn injected_ungranted_operation_is_flagged_cf001() {
    let (name, handler) = all_handlers()
        .into_iter()
        .find(|(name, _)| *name == "radeon-3.2.0")
        .expect("radeon-3.2.0 is registered");
    // Pick a command the analyzer fully resolves statically so the granted
    // set below is exactly the frontend's declaration.
    let (cmd, templates) = handler
        .commands()
        .into_iter()
        .find_map(|cmd| match extract_command(handler, cmd) {
            Ok(Extraction::Static(t)) if !t.is_empty() => Some((cmd, t)),
            _ => None,
        })
        .expect("radeon has statically-extractable commands");
    let arg = 0x4000_0000u64;
    let granted: Vec<ResolvedOp> = templates
        .iter()
        .map(|t| ResolvedOp {
            kind: t.kind,
            addr: t.addr.resolve(arg),
            len: t.len,
        })
        .collect();

    // A faithful run is clean…
    let faithful = ObservedIoctl {
        cmd,
        arg,
        granted: granted.clone(),
        executed: granted.clone(),
    };
    let mut diags = Vec::new();
    check_replay(name, handler, &[faithful], &mut diags);
    assert!(diags.is_empty(), "faithful replay flagged: {diags:#?}");

    // …and the same run with one smuggled-in write is not.
    let mut executed = granted.clone();
    executed.push(ResolvedOp {
        kind: OpKind::CopyToUser,
        addr: 0x9000_0000,
        len: 64,
    });
    let tampered = ObservedIoctl {
        cmd,
        arg,
        granted,
        executed,
    };
    let mut diags = Vec::new();
    check_replay(name, handler, &[tampered], &mut diags);
    let cf001: Vec<_> = diags.iter().filter(|d| d.code == DiagCode::Cf001).collect();
    assert_eq!(cf001.len(), 1, "got: {diags:#?}");
    assert_eq!(cf001[0].severity, Severity::Error);
    assert!(cf001[0].message.contains("0x90000000"));
}

/// An `AuditLog` round-trips through its text export into `CF004` findings.
#[test]
fn audit_log_export_replays_to_cf004() {
    let mut log = AuditLog::new();
    log.record(
        1_000,
        AuditEvent::UngrantedMemOp {
            caller: VmId(1),
            target: VmId(2),
            grant: None,
            description: "copy_to_guest 64B at 0x9000".to_owned(),
        },
    );
    log.record(2_000, AuditEvent::ProtectedMmioWrite { offset: 0x44 });

    let entries = parse_audit_text(&log.export_text());
    assert_eq!(entries.len(), 2);
    let mut diags = Vec::new();
    check_audit("radeon-3.2.0", &entries, &mut diags);
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().all(|d| d.code == DiagCode::Cf004));
    assert!(diags.iter().all(|d| d.severity == Severity::Error));
    assert!(diags[0].message.contains("ungranted_mem_op"));
    assert!(diags[1].message.contains("protected_mmio_write"));
}

/// Full circle: run the attack suite against a live isolated machine, take
/// the hypervisor's *actual* audit log, export it, and replay it through
/// the conformance pass — every blocked attack must surface as `CF004`.
#[test]
fn attack_suite_audit_log_fails_conformance() {
    let mut m = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: true,
        })
        .guest(GuestSpec::linux())
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .device(DeviceSpec::Mouse)
        .build()
        .expect("isolated machine builds");
    let outcomes = attack::run_all(&mut m);
    assert!(!outcomes.is_empty());

    let text = m.hv().borrow().audit().export_text();
    let entries = parse_audit_text(&text);
    assert!(
        !entries.is_empty(),
        "attack suite produced an empty audit log"
    );
    let mut diags = Vec::new();
    check_audit("attack-run", &entries, &mut diags);
    assert_eq!(diags.len(), entries.len());
    assert!(has_errors(&diags), "blocked attacks must be error-class");
    // The grant-table bypass attack specifically shows up as an ungranted
    // memory operation in the export.
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("ungranted_mem_op")),
        "no ungranted_mem_op in:\n{text}"
    );
}
