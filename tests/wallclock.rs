//! The cross-mode differential gate.
//!
//! The wall-clock substrate (real threads, atomic rings, lock-free grant
//! reads) is only trustworthy if it computes *exactly* what the
//! deterministic virtual substrate computes — the virtual clock stays the
//! correctness oracle, the wall clock only changes how long things take.
//! These tests pin that equivalence at three levels:
//!
//! 1. **Bytes** — the same workload through both engines yields
//!    byte-identical encoded responses, in the same order.
//! 2. **Replay lints** — both engines' assembled traces pass the
//!    `RP001`–`RP006` replay checks with zero error-class findings, and a
//!    rogue workload fires `RP001` identically in both.
//! 3. **Interleavings** — the atomic ring behaves FIFO at pipeline depth
//!    1 and at the fast path's depth 8, including under a saturating
//!    producer.

use paradice_analyzer::lint::{replay, DiagCode, Diagnostic, Severity};
use paradice_cvd::exec::{
    run_workload, ExecRun, ScriptedService, VirtualEngine, WallEngine, WorkloadOp,
    EXEC_RING_DEPTH,
};
use paradice_cvd::proto::{WireOp, WireRequest, WireResponse};
use paradice_devfs::Errno;
use paradice_hypervisor::{Engine, EngineError, EngineKind, MemOpGrant};
use paradice_mem::{GuestPhysAddr, GuestVirtAddr};

const DEVICE: &str = "/dev/exec0";

/// The mixed reference workload: interactive ioctls (grant pair each),
/// netmap-style writes (one wide grant), and grantless polls.
fn reference_ops() -> Vec<WorkloadOp> {
    let mut ops = Vec::new();
    for i in 0..60u64 {
        let arg = 0x10_0000 + (i % 32) * 16;
        ops.push(WorkloadOp {
            op: WireOp::Ioctl {
                cmd: paradice_bench::wallclock::INTERACTIVE_CMD,
                arg,
            },
            grants: vec![
                MemOpGrant::CopyFromGuest {
                    addr: GuestVirtAddr::new(arg),
                    len: 8,
                },
                MemOpGrant::CopyToGuest {
                    addr: GuestVirtAddr::new(arg),
                    len: 8,
                },
            ],
        });
        if i % 3 == 0 {
            ops.push(WorkloadOp {
                op: WireOp::Write {
                    addr: GuestVirtAddr::new(0x20_0000 + i * 512),
                    len: 512,
                },
                grants: vec![MemOpGrant::CopyFromGuest {
                    addr: GuestVirtAddr::new(0x20_0000 + i * 512),
                    len: 512,
                }],
            });
        }
        if i % 5 == 0 {
            ops.push(WorkloadOp {
                op: WireOp::Poll,
                grants: Vec::new(),
            });
        }
    }
    ops
}

fn run(kind: EngineKind, ops: &[WorkloadOp]) -> ExecRun {
    let (service, _) = ScriptedService::new();
    match kind {
        EngineKind::Virtual => {
            let mut engine = VirtualEngine::new(service);
            run_workload(&mut engine, DEVICE, ops).expect("virtual run")
        }
        EngineKind::Wall => {
            let mut engine = WallEngine::new(service);
            run_workload(&mut engine, DEVICE, ops).expect("wall run")
        }
    }
}

fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect()
}

#[test]
fn both_modes_compute_identical_op_semantics() {
    let ops = reference_ops();
    let virt = run(EngineKind::Virtual, &ops);
    let wall = run(EngineKind::Wall, &ops);
    assert_eq!(virt.responses.len(), ops.len());
    // Level 1: byte identity, response for response.
    assert_eq!(
        virt.responses, wall.responses,
        "substrates must agree byte-for-byte"
    );
    // And the decoded op-level view agrees too (no compensating encode
    // bugs): every pair decodes to the same success value.
    for (v, w) in virt.responses.iter().zip(&wall.responses) {
        let v = WireResponse::decode(v).expect("virtual response decodes");
        let w = WireResponse::decode(w).expect("wall response decodes");
        assert_eq!(v, w);
        assert!(!matches!(v, WireResponse::Err(_)), "reference ops succeed");
    }
}

#[test]
fn both_modes_replay_lint_clean() {
    let ops = reference_ops();
    for kind in [EngineKind::Virtual, EngineKind::Wall] {
        let result = run(kind, &ops);
        let mut diags = Vec::new();
        let summary = replay::check_trace(&result.trace, &mut diags);
        assert_eq!(summary.spans, ops.len(), "{kind}: one span per op");
        assert!(summary.mem_ops > 0, "{kind}: memops recorded");
        assert!(
            errors(&diags).is_empty(),
            "{kind}: replay must be clean, got {:?}",
            errors(&diags)
        );
    }
}

#[test]
fn rogue_memop_fires_rp001_identically_in_both_modes() {
    // arg == u64::MAX makes ScriptedService read outside the declared
    // grant — the wall substrate must refuse it exactly like the oracle.
    let rogue = vec![WorkloadOp {
        op: WireOp::Ioctl {
            cmd: paradice_bench::wallclock::INTERACTIVE_CMD,
            arg: u64::MAX,
        },
        grants: vec![MemOpGrant::CopyFromGuest {
            addr: GuestVirtAddr::new(0x1000),
            len: 8,
        }],
    }];
    let mut per_mode = Vec::new();
    for kind in [EngineKind::Virtual, EngineKind::Wall] {
        let result = run(kind, &rogue);
        assert_eq!(
            WireResponse::decode(&result.responses[0]).expect("decodes"),
            WireResponse::Err(Errno::Efault),
            "{kind}: blocked memop must fail the op"
        );
        let mut diags = Vec::new();
        replay::check_trace(&result.trace, &mut diags);
        let rp001: Vec<String> = diags
            .iter()
            .filter(|d| d.code == DiagCode::Rp001 && d.severity == Severity::Error)
            .map(|d| d.message.clone())
            .collect();
        assert!(!rp001.is_empty(), "{kind}: RP001 must fire");
        per_mode.push((result.responses, rp001));
    }
    let (virt_responses, virt_rp001) = &per_mode[0];
    let (wall_responses, wall_rp001) = &per_mode[1];
    assert_eq!(virt_responses, wall_responses);
    assert_eq!(virt_rp001, wall_rp001, "same finding, same wording");
}

/// Encodes a minimal grantless request whose response value identifies it
/// (the echo service answers `Write` with `Value(len)`, so `len` is the
/// tag).
fn tagged_write(span: u64, tag: u64) -> (Vec<u8>, i64) {
    let request = WireRequest {
        task: 1,
        pt_root: GuestPhysAddr::new(0x4000),
        handle: 1,
        span,
        grant: None,
        op: WireOp::Write {
            addr: GuestVirtAddr::new(0),
            len: tag,
        },
    };
    (request.encode(), tag as i64)
}

/// A service that performs no memory operations, so grantless requests
/// succeed: pure ring-interleaving pressure.
fn echo_service() -> impl FnMut(&WireRequest) -> (WireResponse, Vec<paradice_hypervisor::MemOpRequest>)
       + Send
       + 'static {
    |req: &WireRequest| {
        let value = match &req.op {
            WireOp::Write { len, .. } => *len as i64,
            _ => 0,
        };
        (WireResponse::Value(value), Vec::new())
    }
}

#[test]
fn atomic_ring_is_fifo_at_depth_1() {
    let mut engine = WallEngine::new(echo_service());
    for i in 0..200u64 {
        let (frame, expect) = tagged_write(i + 1, i);
        engine.submit(&frame).expect("submit");
        let response = engine.complete_blocking().expect("complete");
        assert_eq!(
            WireResponse::decode(&response).expect("decodes"),
            WireResponse::Value(expect),
            "depth-1 round trip {i}"
        );
    }
    engine.shutdown();
}

#[test]
fn atomic_ring_is_fifo_at_depth_8() {
    let mut engine = WallEngine::new(echo_service());
    let mut next = 0u64;
    let mut drained = 0u64;
    // Keep exactly 8 in flight; completions must arrive in submit order
    // even though the backend races ahead on its own thread.
    while drained < 2_000 {
        while next - drained < EXEC_RING_DEPTH as u64 && next < 2_000 {
            let (frame, _) = tagged_write(next + 1, next);
            match engine.submit(&frame) {
                Ok(()) => next += 1,
                Err(EngineError::Backpressure) => break,
                Err(e) => panic!("submit: {e}"),
            }
        }
        let response = engine.complete_blocking().expect("complete");
        assert_eq!(
            WireResponse::decode(&response).expect("decodes"),
            WireResponse::Value(drained as i64),
            "completion order must be submission order"
        );
        drained += 1;
    }
    engine.shutdown();
}

#[test]
fn saturating_producer_never_loses_or_reorders_frames() {
    // Push as hard as the ring allows (backpressure-drain loop) and let
    // the backend thread race: every frame must come back exactly once,
    // in order.
    let mut engine = WallEngine::new(echo_service());
    let total = 5_000u64;
    let mut submitted = 0u64;
    let mut drained = 0u64;
    while drained < total {
        if submitted < total {
            let (frame, _) = tagged_write(submitted + 1, submitted);
            match engine.submit(&frame) {
                Ok(()) => {
                    submitted += 1;
                    continue;
                }
                Err(EngineError::Backpressure) => {}
                Err(e) => panic!("submit: {e}"),
            }
        }
        let response = engine.complete_blocking().expect("complete");
        assert_eq!(
            WireResponse::decode(&response).expect("decodes"),
            WireResponse::Value(drained as i64)
        );
        drained += 1;
    }
    engine.shutdown();
}

#[test]
fn survival_matrix_is_identical_on_the_wall_substrate() {
    // The PR-3 fault campaign (seed 42, 50 campaigns) on the wall clock:
    // fault selection derives only from the seed and the matrix carries
    // no timestamps, so the real-time substrate must reproduce the
    // virtual oracle's survival matrix exactly — including all 35 of 35
    // driver-VM deaths recovering.
    let virt = paradice_bench::faults::run_campaigns_on(EngineKind::Virtual, 42, 50);
    let wall = paradice_bench::faults::run_campaigns_on(EngineKind::Wall, 42, 50);
    assert_eq!(
        virt.matrix().render(),
        wall.matrix().render(),
        "wall substrate must reproduce the virtual survival matrix"
    );
    assert_eq!(virt.recovery_counts(), (35, 35));
    assert_eq!(wall.recovery_counts(), (35, 35));
    assert!(wall.pass(), "{}", wall.render());
    assert_eq!(wall.guest_failures(), 0);
}
