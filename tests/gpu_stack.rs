//! Full-stack GPU integration: the same application code runs natively,
//! under device assignment, and in a Paradice guest (the paper's central
//! claim — the device file boundary is class-agnostic and mode-agnostic).

use paradice::app::drm::DrmClient;
use paradice::gpu_ioctl::{gem_domain, info};
use paradice::prelude::*;

fn machine(mode: ExecMode) -> Machine {
    let mut builder = Machine::builder().mode(mode).device(DeviceSpec::gpu());
    if matches!(mode, ExecMode::Paradice { .. }) {
        builder = builder.guest(GuestSpec::linux());
    }
    builder.build().expect("machine builds")
}

fn spawn(machine: &mut Machine) -> TaskId {
    let guest = matches!(machine.mode(), ExecMode::Paradice { .. }).then_some(0);
    machine.spawn_process(guest).expect("process spawns")
}

fn all_modes() -> Vec<ExecMode> {
    vec![
        ExecMode::Native,
        ExecMode::DeviceAssignment,
        ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        },
        ExecMode::Paradice {
            transport: TransportMode::polling_default(),
            data_isolation: false,
        },
    ]
}

#[test]
fn info_ioctl_works_in_every_mode() {
    for mode in all_modes() {
        let mut m = machine(mode);
        let task = spawn(&mut m);
        let drm = DrmClient::open(&mut m, task).expect("open card0");
        assert_eq!(drm.info(&mut m, info::DEVICE_ID).unwrap(), 0x6779, "{mode:?}");
        assert_eq!(
            drm.info(&mut m, info::VRAM_SIZE).unwrap(),
            1024 * PAGE_SIZE,
            "{mode:?}"
        );
        assert_eq!(drm.info(&mut m, info::FAMILY).unwrap(), 0x45, "{mode:?}");
    }
}

#[test]
fn render_loop_works_in_every_mode() {
    for mode in all_modes() {
        let mut m = machine(mode);
        let task = spawn(&mut m);
        let drm = DrmClient::open(&mut m, task).expect("open card0");
        let fb = drm
            .gem_create(&mut m, 64 * PAGE_SIZE, gem_domain::VRAM)
            .expect("framebuffer");
        let t0 = m.now_ns();
        for _ in 0..10 {
            drm.submit_render(&mut m, 2_000, fb).expect("render");
            drm.wait_idle(&mut m, fb).expect("wait");
        }
        let elapsed = m.now_ns() - t0;
        // 10 frames × 2 ms of GPU time: the floor is 20 ms in every mode.
        assert!(elapsed >= 20_000_000, "{mode:?}: {elapsed} ns");
        // …and even interrupt-mode forwarding adds well under 10%.
        assert!(elapsed < 22_000_000, "{mode:?}: {elapsed} ns");
    }
}

#[test]
fn pwrite_data_lands_in_vram_and_reads_back() {
    for mode in all_modes() {
        let mut m = machine(mode);
        let task = spawn(&mut m);
        let drm = DrmClient::open(&mut m, task).expect("open card0");
        let bo = drm
            .gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM)
            .expect("bo");
        let data_va = m.alloc_buffer(task, 4096).expect("staging");
        m.write_mem(task, data_va, b"through-the-whole-stack")
            .expect("stage");
        drm.gem_pwrite(&mut m, bo, 0, data_va, 23).expect("pwrite");
        let read_va = m.alloc_buffer(task, 4096).expect("readback");
        drm.gem_pread(&mut m, bo, 0, read_va, 23).expect("pread");
        let mut back = [0u8; 23];
        m.read_mem(task, read_va, &mut back).expect("read");
        assert_eq!(&back, b"through-the-whole-stack", "{mode:?}");
    }
}

#[test]
fn gem_mmap_gives_the_process_a_window_into_vram() {
    for mode in all_modes() {
        let mut m = machine(mode);
        let task = spawn(&mut m);
        let drm = DrmClient::open(&mut m, task).expect("open card0");
        let bo = drm
            .gem_create(&mut m, 2 * PAGE_SIZE, gem_domain::VRAM)
            .expect("bo");
        // Upload via PWRITE, observe through the mapping.
        let data_va = m.alloc_buffer(task, 64).expect("staging");
        m.write_mem(task, data_va, b"mapped!").expect("stage");
        drm.gem_pwrite(&mut m, bo, 0, data_va, 7).expect("pwrite");
        let map = drm.gem_map(&mut m, bo, 2 * PAGE_SIZE).expect("map");
        let mut through_map = [0u8; 7];
        m.read_mem(task, map, &mut through_map).expect("read map");
        assert_eq!(&through_map, b"mapped!", "{mode:?}");
        // Writes through the mapping are visible via PREAD.
        m.write_mem(task, map, b"texels^").expect("write map");
        let back_va = m.alloc_buffer(task, 64).expect("back");
        drm.gem_pread(&mut m, bo, 0, back_va, 7).expect("pread");
        let mut back = [0u8; 7];
        m.read_mem(task, back_va, &mut back).expect("read");
        assert_eq!(&back, b"texels^", "{mode:?}");
        // Unmap tears the window down.
        m.munmap(task, drm.fd, map, 2 * PAGE_SIZE).expect("munmap");
        assert!(m.read_mem(task, map, &mut through_map).is_err(), "{mode:?}");
    }
}

#[test]
fn gtt_objects_work_too() {
    for mode in all_modes() {
        let mut m = machine(mode);
        let task = spawn(&mut m);
        let drm = DrmClient::open(&mut m, task).expect("open card0");
        let bo = drm
            .gem_create(&mut m, PAGE_SIZE, gem_domain::GTT)
            .expect("gtt bo");
        let data_va = m.alloc_buffer(task, 64).expect("staging");
        m.write_mem(task, data_va, b"gtt-bytes").expect("stage");
        drm.gem_pwrite(&mut m, bo, 0, data_va, 9).expect("pwrite");
        let map = drm.gem_map(&mut m, bo, PAGE_SIZE).expect("map");
        let mut seen = [0u8; 9];
        m.read_mem(task, map, &mut seen).expect("read");
        assert_eq!(&seen, b"gtt-bytes", "{mode:?}");
    }
}

#[test]
fn compute_time_is_identical_across_modes_modulo_forwarding() {
    let mut times = Vec::new();
    for mode in all_modes() {
        let mut m = machine(mode);
        let task = spawn(&mut m);
        let drm = DrmClient::open(&mut m, task).expect("open card0");
        let bo = drm
            .gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM)
            .expect("bo");
        let t0 = m.now_ns();
        drm.submit_compute(&mut m, 100).expect("dispatch");
        drm.wait_idle(&mut m, bo).expect("wait");
        times.push((mode, m.now_ns() - t0));
    }
    let native = times[0].1 as f64;
    for (mode, t) in &times {
        let ratio = *t as f64 / native;
        assert!(
            (0.99..1.05).contains(&ratio),
            "{mode:?}: ratio {ratio} (t = {t})"
        );
    }
}

#[test]
fn grant_lifecycle_is_clean_after_operations() {
    let mut m = machine(ExecMode::Paradice {
        transport: TransportMode::Interrupts,
        data_isolation: false,
    });
    let task = spawn(&mut m);
    let drm = DrmClient::open(&mut m, task).expect("open card0");
    let bo = drm
        .gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM)
        .expect("bo");
    drm.submit_render(&mut m, 100, bo).expect("render");
    drm.wait_idle(&mut m, bo).expect("wait");
    // Every declared grant was revoked once its operation finished (§5.1).
    let guest = m.guest_vms()[0];
    assert_eq!(m.hv().borrow().outstanding_grants(guest), 0);
    // And nothing tripped the audit log in a clean run.
    assert!(m.hv().borrow().audit().is_empty());
}

#[test]
fn nested_copy_cs_goes_through_jit_grant_derivation() {
    let mut m = machine(ExecMode::Paradice {
        transport: TransportMode::Interrupts,
        data_isolation: false,
    });
    let task = spawn(&mut m);
    let drm = DrmClient::open(&mut m, task).expect("open card0");
    let bo = drm
        .gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM)
        .expect("bo");
    drm.submit_render(&mut m, 50, bo).expect("render");
    let frontend = m.frontend(0).expect("frontend");
    let stats = frontend.borrow().stats();
    // GEM_CREATE is static; CS requires JIT evaluation (§4.1).
    assert!(stats.jit_evaluations >= 1, "stats: {stats:?}");
    assert!(stats.grants_declared >= 2);
}

#[test]
fn close_releases_driver_state() {
    for mode in all_modes() {
        let mut m = machine(mode);
        let task = spawn(&mut m);
        let drm = DrmClient::open(&mut m, task).expect("open card0");
        let bo = drm
            .gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM)
            .expect("bo");
        drm.gem_close(&mut m, bo).expect("close bo");
        m.close(task, drm.fd).expect("close fd");
        // Using the stale descriptor fails.
        assert!(drm.info(&mut m, info::DEVICE_ID).is_err(), "{mode:?}");
    }
}

#[test]
fn lazy_mappings_populate_through_the_fault_handler() {
    // §2.1: mapping "is mainly used by the mmap file operation and its
    // supporting page fault handler." A LAZY_MAP object installs no pages
    // at mmap time; each fault maps exactly one page.
    use paradice_drivers::gpu::driver::GEM_CREATE_LAZY_MAP;
    for mode in all_modes() {
        let mut m = machine(mode);
        let task = spawn(&mut m);
        let drm = DrmClient::open(&mut m, task).expect("open card0");
        let bo = drm
            .gem_create_with_flags(&mut m, 2 * PAGE_SIZE, gem_domain::VRAM, GEM_CREATE_LAZY_MAP)
            .expect("lazy bo");
        // Put data in via PWRITE so the fault-mapped page has content.
        let data = m.alloc_buffer(task, 64).expect("staging");
        m.write_mem(task, data, b"lazy-page").expect("stage");
        drm.gem_pwrite(&mut m, bo, PAGE_SIZE, data, 9).expect("pwrite page 1");
        let map = drm.gem_map(&mut m, bo, 2 * PAGE_SIZE).expect("map");
        // Nothing is mapped yet: the access faults.
        let mut probe = [0u8; 9];
        assert!(m.read_mem(task, map.add(PAGE_SIZE), &mut probe).is_err(), "{mode:?}");
        // The kernel routes the fault to the driver, which installs the one
        // page…
        m.fault_page(task, drm.fd, map.add(PAGE_SIZE)).expect("fault");
        m.read_mem(task, map.add(PAGE_SIZE), &mut probe).expect("read after fault");
        assert_eq!(&probe, b"lazy-page", "{mode:?}");
        // …and only that page: page 0 still faults.
        assert!(m.read_mem(task, map, &mut probe).is_err(), "{mode:?}");
        // Faults outside any mapping are refused.
        assert_eq!(
            m.fault_page(task, drm.fd, GuestVirtAddr::new(0x7777_0000)),
            Err(Errno::Efault),
            "{mode:?}"
        );
    }
}

#[test]
fn two_gpu_makes_share_one_cvd() {
    // Table 1's point: a Radeon and an Intel GPU — different drivers,
    // different ioctl surfaces — both behind the very same CVD pair.
    use paradice::app::i915::{param, IntelClient};
    let mut m = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .device(DeviceSpec::intel_gpu())
        .build()
        .expect("two-GPU machine builds");
    let task = m.spawn_process(Some(0)).unwrap();

    // The guest sees both on its virtual PCI bus.
    let bus = m.bus(0).unwrap();
    assert_eq!(bus.len(), 2);
    assert!(bus.scan().iter().any(|l| l.contains("8086:2a02")));

    // Radeon path.
    let radeon = DrmClient::open(&mut m, task).expect("open radeon");
    assert_eq!(radeon.info(&mut m, info::DEVICE_ID).unwrap(), 0x6779);
    let rfb = radeon
        .gem_create(&mut m, 4 * PAGE_SIZE, gem_domain::VRAM)
        .unwrap();
    radeon.submit_render(&mut m, 1_000, rfb).unwrap();

    // Intel path, concurrently, through the same backend.
    let intel = IntelClient::open(&mut m, task).expect("open i915");
    assert_eq!(intel.getparam(&mut m, param::CHIPSET_ID).unwrap(), 0x2a02);
    let ifb = intel.gem_create(&mut m, 4 * PAGE_SIZE).unwrap();
    let fence = intel.exec_render(&mut m, 2_000, ifb).unwrap();
    assert_eq!(fence, 1);
    // PWRITE through the i915's own nested-copy path, read back via mmap.
    let data = m.alloc_buffer(task, 64).unwrap();
    m.write_mem(task, data, b"two-makes").unwrap();
    intel.gem_pwrite(&mut m, ifb, 0, data, 9).unwrap();
    let map = intel.gem_map(&mut m, ifb, PAGE_SIZE).unwrap();
    let mut seen = [0u8; 9];
    m.read_mem(task, map, &mut seen).unwrap();
    assert_eq!(&seen, b"two-makes");

    intel.wait(&mut m, ifb).unwrap();
    radeon.wait_idle(&mut m, rfb).unwrap();
    // Clean run: no isolation violations despite two drivers multiplexed
    // over one backend.
    assert!(m.hv().borrow().audit().is_empty());
}

#[test]
fn malformed_cs_pointers_fail_in_the_frontend_before_the_driver() {
    // Fault isolation has a side benefit: the frontend's JIT grant
    // derivation reads the chunk list itself, so a CS pointing at unmapped
    // memory dies with EFAULT in the *guest* — the driver VM never sees it.
    let mut m = machine(ExecMode::Paradice {
        transport: TransportMode::Interrupts,
        data_isolation: false,
    });
    let task = spawn(&mut m);
    let drm = DrmClient::open(&mut m, task).expect("open");
    let ops_before = m.backend().unwrap().borrow().ops_executed();
    // CS args whose chunks_ptr points into the void.
    let scratch = m.alloc_buffer(task, 64).expect("scratch");
    let mut args = [0u8; 16];
    args[0..8].copy_from_slice(&0xdead_0000u64.to_le_bytes());
    args[8..12].copy_from_slice(&1u32.to_le_bytes());
    m.write_mem(task, scratch, &args).expect("stage");
    assert_eq!(
        m.ioctl(task, drm.fd, paradice::gpu_ioctl::RADEON_CS, scratch.raw()),
        Err(Errno::Efault)
    );
    // The backend never executed the operation.
    assert_eq!(m.backend().unwrap().borrow().ops_executed(), ops_before);
    // And no grants leaked.
    assert_eq!(m.hv().borrow().outstanding_grants(m.guest_vms()[0]), 0);
}

#[test]
fn machine_configuration_errors_are_reported() {
    // Guests in native mode.
    assert!(Machine::builder()
        .mode(ExecMode::Native)
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .build()
        .is_err());
    // Paradice without guests.
    assert!(Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .device(DeviceSpec::gpu())
        .build()
        .is_err());
    // Process placement must match the mode.
    let mut native = Machine::builder()
        .mode(ExecMode::Native)
        .device(DeviceSpec::gpu())
        .build()
        .unwrap();
    assert!(native.spawn_process(Some(0)).is_err());
    let mut paradice = machine(ExecMode::Paradice {
        transport: TransportMode::Interrupts,
        data_isolation: false,
    });
    assert!(paradice.spawn_process(None).is_err());
    assert!(paradice.spawn_process(Some(7)).is_err());
}

#[test]
fn descriptor_misuse_is_rejected() {
    let mut m = machine(ExecMode::Paradice {
        transport: TransportMode::Interrupts,
        data_isolation: false,
    });
    let task = spawn(&mut m);
    // Unknown fd.
    assert_eq!(m.poll(task, 42), Err(Errno::Ebadf));
    // Double close.
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    m.close(task, fd).unwrap();
    assert_eq!(m.close(task, fd), Err(Errno::Ebadf));
    // Unknown task.
    assert_eq!(
        m.open(TaskId(9999), "/dev/dri/card0"),
        Err(Errno::Einval)
    );
    // Zero-length mmap.
    let fd = m.open(task, "/dev/dri/card0").unwrap();
    assert_eq!(
        m.mmap(task, fd, 0, 0, Access::RW),
        Err(Errno::Einval)
    );
}
