//! Multi-tenant scale-out gates: the fairness regression and the
//! wait-queue-cap contract on both substrates.
//!
//! ISSUE 10's two scale-out promises, pinned as tests rather than bench
//! numbers:
//!
//! 1. **Fairness** — one light interactive guest keeps a bounded p99
//!    while 99 heavy neighbors hold their wait queues at the cap, under
//!    the default fair-share policy, on both the deterministic virtual
//!    substrate and the threaded wall-clock substrate. The flood itself
//!    must keep progressing (fair share never starves the heavies) and
//!    must actually hit the cap (backpressure observed).
//! 2. **The cap** — driving one guest's queue past its cap surfaces as
//!    `EngineError::Backpressure` (the guest's own `EAGAIN`) and nothing
//!    else: every accepted op completes exactly once, in submission
//!    order, and the queue is usable again once drained.

use paradice_bench::scale::{self, FloodPoint};
use paradice_cvd::proto::{WireOp, WireRequest, WireResponse};
use paradice_cvd::{
    build_multi, MultiEngine, MultiVirtualEngine, SchedPolicy, ScriptedService, MULTI_QUEUE_CAP,
};
use paradice_devfs::ioc::io;
use paradice_hypervisor::{EngineError, EngineKind, GrantRef, MemOpGrant};
use paradice_mem::{GuestPhysAddr, GuestVirtAddr};

/// The check.sh bounds, shared here so the regression fires before the
/// gate does: modeled virtual time is tight; the threaded substrate gets
/// slack for scheduler noise on loaded CI machines.
const VIRTUAL_FLOOD_P99_BOUND_NS: u64 = 10_000_000;
const WALL_FLOOD_P99_BOUND_NS: u64 = 100_000_000;

fn flood(kind: EngineKind) -> FloodPoint {
    scale::flood_point(kind, 100, 50)
}

#[test]
fn the_light_guest_p99_stays_bounded_under_a_99_guest_flood_virtual() {
    let point = flood(EngineKind::Virtual);
    assert!(point.backpressured > 0, "the flood must hit the cap");
    assert!(point.heavy_ops > 0, "the heavies must keep progressing");
    assert!(
        point.light_p99_ns < VIRTUAL_FLOOD_P99_BOUND_NS,
        "virtual light-guest p99 {} ns breached the {} ns bound",
        point.light_p99_ns,
        VIRTUAL_FLOOD_P99_BOUND_NS,
    );
}

#[test]
fn the_light_guest_p99_stays_bounded_under_a_99_guest_flood_wall() {
    let point = flood(EngineKind::Wall);
    assert!(point.backpressured > 0, "the flood must hit the cap");
    assert!(point.heavy_ops > 0, "the heavies must keep progressing");
    assert!(
        point.light_p99_ns < WALL_FLOOD_P99_BOUND_NS,
        "wall light-guest p99 {} ns breached the {} ns bound",
        point.light_p99_ns,
        WALL_FLOOD_P99_BOUND_NS,
    );
}

/// A netmap-style granted write whose echoed `Value(len)` tags it, so
/// completion order is checkable against submission order.
fn tagged_write(engine: &mut dyn MultiEngine, guest: u32, index: u64) -> (Vec<u8>, GrantRef, i64) {
    let len = index + 1;
    let addr = GuestVirtAddr::new(0x4_0000 + index * 0x1000);
    let grant = engine
        .grants()
        .declare(guest, vec![MemOpGrant::CopyFromGuest { addr, len }])
        .expect("declare");
    let frame = WireRequest {
        task: u64::from(guest) + 1,
        pt_root: GuestPhysAddr::new(0x4000),
        handle: 1,
        span: 0,
        grant: Some(grant),
        op: WireOp::Write { addr, len },
    }
    .encode();
    (frame, grant, len as i64)
}

#[test]
fn cap_overflow_is_clean_backpressure_with_fifo_preserved_on_both_substrates() {
    for kind in [EngineKind::Virtual, EngineKind::Wall] {
        let (service, _) = ScriptedService::new();
        let mut engine = build_multi(kind, service, 2, SchedPolicy::FairShare);
        let mut expected: Vec<i64> = Vec::new();
        let mut grants: Vec<GrantRef> = Vec::new();
        let mut backpressured = 0usize;
        for i in 0..(MULTI_QUEUE_CAP + 8) as u64 {
            let (frame, grant, tag) = tagged_write(engine.as_mut(), 0, i);
            match engine.submit(0, &frame) {
                Ok(()) => {
                    expected.push(tag);
                    grants.push(grant);
                }
                Err(EngineError::Backpressure) => {
                    backpressured += 1;
                    engine.grants().revoke(0, grant);
                }
                Err(e) => panic!("{kind}: overflow surfaced as {e:?}, not backpressure"),
            }
        }
        // The cap is the frontend's in-flight bound on both substrates.
        assert_eq!(expected.len(), MULTI_QUEUE_CAP, "{kind}: accepted to the cap");
        assert_eq!(backpressured, 8, "{kind}: every overflow backpressured");
        // Every accepted op completes exactly once, in submission order.
        let mut echoed: Vec<i64> = Vec::new();
        for grant in &grants {
            let (guest, frame) = engine.complete_blocking().expect("drain");
            assert_eq!(guest, 0, "{kind}: completions belong to the flooder");
            match WireResponse::decode(&frame).expect("decodes") {
                WireResponse::Value(v) => echoed.push(v),
                other => panic!("{kind}: accepted write answered {other:?}"),
            }
            engine.grants().revoke(0, *grant);
        }
        assert_eq!(echoed, expected, "{kind}: FIFO preserved, nothing dropped");
        assert!(matches!(engine.complete(), Ok(None)), "{kind}: drained dry");
        // Backpressure is transient: the drained queue accepts again.
        let (frame, grant, tag) = tagged_write(engine.as_mut(), 0, 99);
        engine.submit(0, &frame).expect("drained queue accepts");
        let (_, frame) = engine.complete_blocking().expect("post-drain completion");
        assert_eq!(
            WireResponse::decode(&frame).expect("decodes"),
            WireResponse::Value(tag),
            "{kind}: the queue works normally after the flood"
        );
        engine.grants().revoke(0, grant);
        engine.finish();
    }
}

/// The light guest's end-to-end virtual latency behind 7 flooding
/// neighbors, under `policy`.
fn light_latency_ns(policy: SchedPolicy) -> u64 {
    let (service, _) = ScriptedService::new();
    let mut engine = MultiVirtualEngine::new(service, 8, policy);
    for guest in 0..7u32 {
        for i in 0..8u64 {
            let addr = GuestVirtAddr::new(0x10_0000 + u64::from(guest) * 0x10_000 + i * 0x1000);
            let grant = engine
                .grants()
                .declare(guest, vec![MemOpGrant::CopyFromGuest { addr, len: 4096 }])
                .expect("declare heavy");
            let frame = WireRequest {
                task: u64::from(guest) + 1,
                pt_root: GuestPhysAddr::new(0x4000),
                handle: 1,
                span: 0,
                grant: Some(grant),
                op: WireOp::Write { addr, len: 4096 },
            }
            .encode();
            engine.submit(guest, &frame).expect("submit heavy");
        }
    }
    let arg = 0x9000u64;
    let grant = engine
        .grants()
        .declare(
            7,
            vec![
                MemOpGrant::CopyFromGuest { addr: GuestVirtAddr::new(arg), len: 8 },
                MemOpGrant::CopyToGuest { addr: GuestVirtAddr::new(arg), len: 8 },
            ],
        )
        .expect("declare light");
    let frame = WireRequest {
        task: 8,
        pt_root: GuestPhysAddr::new(0x4000),
        handle: 1,
        span: 0,
        grant: Some(grant),
        op: WireOp::Ioctl { cmd: io(b'T', 1), arg },
    }
    .encode();
    engine.submit(7, &frame).expect("submit light");
    loop {
        let (guest, response) = engine.complete_blocking().expect("serve");
        if guest == 7 {
            assert_eq!(
                WireResponse::decode(&response).expect("decodes"),
                WireResponse::Value(0),
                "the light ioctl must succeed"
            );
            return engine.clock().now_ns();
        }
    }
}

#[test]
fn fair_share_beats_fifo_for_the_light_guest_on_the_virtual_oracle() {
    // Same backlog, same arrival order; only the policy differs. Under
    // FIFO the light ioctl waits out all 56 heavy writes; under the
    // default fair share it is served within a couple of picks.
    let fifo = light_latency_ns(SchedPolicy::Fifo);
    let fair = light_latency_ns(SchedPolicy::FairShare);
    assert!(
        fair * 4 < fifo,
        "fair share must cut the light guest's latency well below FIFO's \
         (fair {fair} ns vs fifo {fifo} ns)"
    );
}
