//! Device sharing between guest VMs (paper §3.2.3, §5.1, §6.1.4): GPGPU
//! concurrency, the foreground/background graphics model, input filtering,
//! and driver-VM recovery.

use paradice::app::drm::DrmClient;
use paradice::gpu_ioctl::gem_domain;
use paradice::prelude::*;
use paradice_drivers::gpu::model::COMPUTE_NS_PER_ELEMENT_OP;

fn machine(guests: usize) -> Machine {
    let mut builder = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .device(DeviceSpec::gpu())
        .device(DeviceSpec::Mouse);
    for _ in 0..guests {
        builder = builder.guest(GuestSpec::linux());
    }
    builder.build().expect("machine builds")
}

#[test]
fn concurrent_gpgpu_scales_linearly() {
    // Figure 6: "the experiment time increases almost linearly with the
    // number of guest VMs … because the GPU processing time is shared."
    let order = 100u32;
    let single_kernel_ns =
        u64::from(order).pow(3) * COMPUTE_NS_PER_ELEMENT_OP;
    let mut times = Vec::new();
    for n in 1..=3usize {
        let mut m = machine(n);
        let mut clients = Vec::new();
        for guest in 0..n {
            let task = m.spawn_process(Some(guest)).unwrap();
            let drm = DrmClient::open(&mut m, task).unwrap();
            let bo = drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
            clients.push((drm, bo));
        }
        // Each guest submits 5 kernels, interleaved (the GPU serializes).
        let start = m.now_ns();
        for _round in 0..5 {
            for (drm, _) in &clients {
                drm.submit_compute(&mut m, order).unwrap();
            }
        }
        for (drm, bo) in &clients {
            drm.wait_idle(&mut m, *bo).unwrap();
        }
        let per_guest_ns = (m.now_ns() - start) as f64;
        times.push(per_guest_ns);
        // Sanity: total engine time = n × 5 kernels.
        assert!(per_guest_ns >= (n as f64) * 5.0 * single_kernel_ns as f64);
    }
    // Experiment time grows ~linearly: t(n) ≈ n · t(1).
    let t1 = times[0];
    for (i, &t) in times.iter().enumerate() {
        let expected = (i as f64 + 1.0) * t1;
        let ratio = t / expected;
        assert!(
            (0.9..1.1).contains(&ratio),
            "n={}: ratio {ratio}",
            i + 1
        );
    }
}

#[test]
fn foreground_background_gates_rendering() {
    // §5.1: "only the foreground guest VM renders to the GPU, while others
    // pause" — the application model: background apps check the terminal
    // state and pause.
    let mut m = machine(2);
    assert!(m.is_foreground(0));
    assert!(!m.is_foreground(1));
    m.switch_foreground(1);
    assert!(!m.is_foreground(0));
    assert!(m.is_foreground(1));
    // An unknown guest cannot take the foreground.
    assert!(!m.switch_foreground(7));
    assert!(m.is_foreground(1));
}

#[test]
fn input_notifications_go_to_the_foreground_guest_only() {
    // §5.1: "for input devices, we only send notifications to the
    // foreground guest VM."
    let mut m = machine(2);
    let t0 = m.spawn_process(Some(0)).unwrap();
    let t1 = m.spawn_process(Some(1)).unwrap();
    let fd0 = m.open(t0, "/dev/input/event0").unwrap();
    let fd1 = m.open(t1, "/dev/input/event0").unwrap();
    m.fasync(t0, fd0, true).unwrap();
    m.fasync(t1, fd1, true).unwrap();

    // Guest 0 holds the foreground: only it is notified.
    m.mouse_move(1, 0);
    assert_eq!(m.wait_event(t0), Some(fd0));
    assert_eq!(m.wait_event(t1), None);

    // Switch terminals: now only guest 1 is notified.
    m.switch_foreground(1);
    m.mouse_move(2, 0);
    assert_eq!(m.wait_event(t1), Some(fd1));
    assert_eq!(m.wait_event(t0), None);
}

#[test]
fn gpu_is_multi_open_across_guests() {
    // §3.2.3: "the same CVD backend supports requests from CVD frontends of
    // all guest VMs" — concurrent opens of the DRM node are fine.
    let mut m = machine(3);
    for guest in 0..3 {
        let task = m.spawn_process(Some(guest)).unwrap();
        DrmClient::open(&mut m, task)
            .unwrap_or_else(|e| panic!("guest {guest}: {e}"));
    }
}

#[test]
fn one_guest_cannot_drive_anothers_open_file() {
    // The backend refuses cross-guest handle use (a malicious frontend
    // forging another guest's backend handle).
    let mut m = machine(2);
    let t0 = m.spawn_process(Some(0)).unwrap();
    let drm0 = DrmClient::open(&mut m, t0).unwrap();
    let _bo = drm0.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    // Guest 1's frontend tries to poll guest 0's backend handle (handle ids
    // are small integers, trivially guessable).
    let t1 = m.spawn_process(Some(1)).unwrap();
    let frontend1 = m.frontend(1).unwrap();
    let pt = paradice_mem::pagetable::GuestPageTables::from_root(
        paradice_mem::GuestPhysAddr::new(0),
    );
    // Open its own file so the frontend has state, then forge the handle by
    // using a bogus local fd — the frontend itself refuses unknown fds.
    let result = frontend1.borrow_mut().poll(t1, 99);
    assert_eq!(result, Err(Errno::Ebadf));
    let _ = pt;
}

#[test]
fn driver_vm_recovery_replaces_wedged_drivers() {
    // §8: "detect the broken device and restart it by simply restarting the
    // driver VM."
    let mut m = machine(1);
    let task = m.spawn_process(Some(0)).unwrap();
    let drm = DrmClient::open(&mut m, task).unwrap();
    let bo = drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    drm.submit_render(&mut m, 100, bo).unwrap();
    // "Break" the device, then restart the driver VM.
    m.recover_driver_vm().expect("recovery");
    // Old descriptors are dead…
    assert!(drm.info(&mut m, 0).is_err());
    // …but a fresh open works and the driver state is clean.
    let task2 = m.spawn_process(Some(0)).unwrap();
    let drm2 = DrmClient::open(&mut m, task2).unwrap();
    let bo2 = drm2.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    drm2.submit_render(&mut m, 100, bo2).unwrap();
    drm2.wait_idle(&mut m, bo2).unwrap();
}

#[test]
fn recovery_recreates_protected_regions_with_data_isolation() {
    // Formerly a documented limitation (recovery refused when §4.2 data
    // isolation was on); the driver-VM reboot now re-creates the protected
    // regions, so recovery works and rendering resumes.
    let mut m = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: true,
        })
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .build()
        .unwrap();
    m.recover_driver_vm().expect("recovery with data isolation");
    let task = m.spawn_process(Some(0)).unwrap();
    let drm = DrmClient::open(&mut m, task).unwrap();
    let bo = drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    drm.submit_render(&mut m, 100, bo).unwrap();
    drm.wait_idle(&mut m, bo).unwrap();
}

#[test]
fn fair_share_scheduling_fixes_the_starvation_limitation() {
    // §8: "Paradice does not guarantee fair and efficient scheduling of the
    // device between guest VMs. The solution is to add better scheduling
    // support to the device driver" — implemented as the engine's
    // fair-share policy, end to end through the CVD.
    // Fair share is the shipped default since ISSUE 10; the ablation knob
    // toggles *back* to the stock FIFO to reproduce the starvation row.
    use paradice_drivers::gpu::model::GpuSched;
    let latency = |fifo: bool| -> u64 {
        let mut m = machine(2);
        if fifo {
            match m.driver("/dev/dri/card0").unwrap() {
                paradice::machine::DriverHandle::Gpu(gpu) => {
                    gpu.borrow_mut().gpu_mut().set_sched(GpuSched::Fifo);
                }
                _ => unreachable!(),
            }
        }
        // Guest 0 floods the engine.
        let heavy = m.spawn_process(Some(0)).unwrap();
        let heavy_drm = DrmClient::open(&mut m, heavy).unwrap();
        let hfb = heavy_drm
            .gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM)
            .unwrap();
        for _ in 0..10 {
            heavy_drm.submit_render(&mut m, 10_000, hfb).unwrap();
        }
        // Guest 1 submits one small frame and waits for *its* fence.
        let light = m.spawn_process(Some(1)).unwrap();
        let light_drm = DrmClient::open(&mut m, light).unwrap();
        let lfb = light_drm
            .gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM)
            .unwrap();
        let t0 = m.now_ns();
        let fence = light_drm.submit_render(&mut m, 1_000, lfb).unwrap();
        match m.driver("/dev/dri/card0").unwrap() {
            paradice::machine::DriverHandle::Gpu(gpu) => {
                gpu.borrow_mut()
                    .gpu_mut()
                    .wait_fence(u64::from(fence))
                    .unwrap();
            }
            _ => unreachable!(),
        }
        m.now_ns() - t0
    };
    let fifo = latency(true);
    let fair = latency(false);
    assert!(fifo > 95_000_000, "FIFO starves the light guest: {fifo}");
    assert!(fair < 15_000_000, "fair share bounds the latency: {fair}");
    assert!(fifo / fair >= 5);
}
