//! Per-device-class integration: camera, audio, input, and netmap run the
//! same application code natively and through Paradice (the paper's Table 1
//! roster, minus the GPU which has its own suite).

use paradice::app::{netmap, pcm, v4l};
use paradice::prelude::*;

fn modes() -> Vec<ExecMode> {
    vec![
        ExecMode::Native,
        ExecMode::DeviceAssignment,
        ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        },
        ExecMode::Paradice {
            transport: TransportMode::polling_default(),
            data_isolation: false,
        },
    ]
}

fn machine_with(mode: ExecMode, device: DeviceSpec) -> Machine {
    let mut builder = Machine::builder().mode(mode).device(device);
    if matches!(mode, ExecMode::Paradice { .. }) {
        builder = builder.guest(GuestSpec::linux());
    }
    builder.build().expect("machine builds")
}

fn spawn(m: &mut Machine) -> TaskId {
    let guest = matches!(m.mode(), ExecMode::Paradice { .. }).then_some(0);
    m.spawn_process(guest).expect("spawn")
}

// ---------------------------------------------------------------------
// Camera
// ---------------------------------------------------------------------

#[test]
fn camera_streams_at_sensor_rate_in_every_mode() {
    for mode in modes() {
        let mut m = machine_with(mode, DeviceSpec::Camera);
        let task = spawn(&mut m);
        let mut cam = v4l::CameraClient::open(&mut m, task).expect("open camera");
        let size = cam.set_format(&mut m, 1280, 720).expect("format");
        assert_eq!(u64::from(size), 1280 * 720 / 10);
        cam.setup_buffers(&mut m, 4).expect("buffers");
        assert_eq!(cam.buffers.len(), 4);
        for i in 0..4 {
            cam.qbuf(&mut m, i).expect("qbuf");
        }
        cam.stream_on(&mut m).expect("stream on");
        let start = m.now_ns();
        let frames = 30u64;
        for _ in 0..frames {
            let (index, used) = cam.dqbuf(&mut m).expect("dqbuf");
            assert_eq!(u64::from(used), 1280 * 720 / 10);
            cam.qbuf(&mut m, index).expect("requeue");
        }
        let fps = frames as f64 / ((m.now_ns() - start) as f64 / 1e9);
        // §6.1.6: ~29.5 FPS in all modes; forwarding overhead is invisible
        // behind the 33.9 ms frame period.
        assert!((29.0..30.0).contains(&fps), "{mode:?}: fps = {fps}");
    }
}

#[test]
fn camera_frames_are_visible_through_the_mapping() {
    for mode in modes() {
        let mut m = machine_with(mode, DeviceSpec::Camera);
        let task = spawn(&mut m);
        let mut cam = v4l::CameraClient::open(&mut m, task).expect("open camera");
        cam.set_format(&mut m, 1280, 720).expect("format");
        cam.setup_buffers(&mut m, 2).expect("buffers");
        cam.qbuf(&mut m, 0).expect("qbuf");
        cam.stream_on(&mut m).expect("on");
        let (index, _) = cam.dqbuf(&mut m).expect("frame");
        let (va, _) = cam.buffers[index as usize];
        let mut soi = [0u8; 4];
        m.read_mem(task, va, &mut soi).expect("read frame header");
        assert_eq!(
            u32::from_le_bytes(soi),
            0xffd8_ffe0,
            "{mode:?}: JPEG SOI marker expected"
        );
    }
}

#[test]
fn camera_is_exclusive_across_guests() {
    let mut m = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .guest(GuestSpec::linux())
        .guest(GuestSpec::linux())
        .device(DeviceSpec::Camera)
        .build()
        .unwrap();
    let t0 = m.spawn_process(Some(0)).unwrap();
    let t1 = m.spawn_process(Some(1)).unwrap();
    let _cam = v4l::CameraClient::open(&mut m, t0).expect("first open");
    // §5.1: "for camera … we only allow access from one guest VM at a time."
    assert_eq!(m.open(t1, "/dev/video0"), Err(Errno::Ebusy));
}

// ---------------------------------------------------------------------
// Audio
// ---------------------------------------------------------------------

#[test]
fn audio_playback_takes_wall_time_in_every_mode() {
    // §6.1.6: "Native, device assignment, and Paradice all take the same
    // amount of time to finish playing the file."
    let mut durations = Vec::new();
    for mode in modes() {
        let mut m = machine_with(mode, DeviceSpec::Audio);
        let task = spawn(&mut m);
        let audio = pcm::AudioClient::open(&mut m, task).expect("open speaker");
        audio.configure(&mut m, 48_000, 2, 16).expect("configure");
        // One second of audio.
        let bytes = 48_000 * 4;
        let elapsed = audio.play(&mut m, bytes).expect("play");
        durations.push((mode, elapsed));
    }
    let native = durations[0].1 as f64;
    for (mode, d) in &durations {
        let ratio = *d as f64 / native;
        assert!(
            (0.98..1.02).contains(&ratio),
            "{mode:?}: playback ratio {ratio}"
        );
    }
}

// ---------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------

#[test]
fn mouse_events_reach_the_reader_in_every_mode() {
    for mode in modes() {
        let mut m = machine_with(mode, DeviceSpec::Mouse);
        let task = spawn(&mut m);
        let fd = m.open(task, "/dev/input/event0").expect("open mouse");
        m.fasync(task, fd, true).expect("fasync");
        m.mouse_move(5, -3);
        // The notification wakes the process…
        let woken_fd = m.wait_event(task).expect("notified");
        assert_eq!(woken_fd, fd, "{mode:?}");
        // …and the read returns both REL_X and REL_Y events.
        let buf = m.alloc_buffer(task, 256).expect("buffer");
        let n = m.read(task, fd, buf, 64).expect("read");
        assert_eq!(n, 32, "{mode:?}: two 16-byte events");
        let mut raw = [0u8; 16];
        m.read_mem(task, buf, &mut raw).expect("event bytes");
        let value = i32::from_le_bytes(raw[12..16].try_into().unwrap());
        assert_eq!(value, 5, "{mode:?}");
    }
}

#[test]
fn mouse_latency_ordering_matches_the_paper() {
    // §6.1.5: native ≈ 39 µs < assignment ≈ 55 µs < Paradice-polling <
    // Paradice-interrupts. We measure exactly what the paper measures: the
    // time from the event reaching the driver to the read reaching it.
    let mut measured = Vec::new();
    for mode in modes() {
        let mut m = machine_with(mode, DeviceSpec::Mouse);
        let task = spawn(&mut m);
        let fd = m.open(task, "/dev/input/event0").expect("open");
        m.fasync(task, fd, true).expect("fasync");
        let buf = m.alloc_buffer(task, 256).expect("buffer");
        // Warm up, then measure several events.
        let mut samples = Vec::new();
        for i in 0..10 {
            // Events arrive sparsely (every ~2 ms of virtual time).
            m.clock().advance(2_000_000);
            m.mouse_move(1, 0);
            let driver = match m.driver("/dev/input/event0").unwrap() {
                paradice::machine::DriverHandle::Input(d) => d,
                _ => unreachable!(),
            };
            let reported = driver.borrow().last_report_ns().unwrap();
            let _ = m.wait_event(task);
            let _ = m.poll(task, fd);
            let _ = m.read(task, fd, buf, 64).expect("read");
            let arrived = driver.borrow().last_read_arrival_ns().unwrap();
            if i >= 2 {
                samples.push(arrived - reported);
            }
        }
        let avg = samples.iter().sum::<u64>() / samples.len() as u64;
        measured.push((mode, avg));
    }
    let native = measured[0].1;
    let assign = measured[1].1;
    let par_int = measured[2].1;
    let par_poll = measured[3].1;
    // The paper's anchors: 39 µs native, 55 µs assignment.
    assert!((37_000..41_000).contains(&native), "native = {native}");
    assert!((53_000..57_000).contains(&assign), "assign = {assign}");
    // Ordering and rough magnitudes for the Paradice variants.
    assert!(par_poll > assign, "polling {par_poll} > assignment {assign}");
    assert!(par_int > par_poll, "interrupts {par_int} > polling {par_poll}");
    assert!(
        (100_000..400_000).contains(&par_int),
        "paradice-int = {par_int}"
    );
}

#[test]
fn keyboard_events_flow_too() {
    let mut m = machine_with(
        ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        },
        DeviceSpec::Keyboard,
    );
    let task = spawn(&mut m);
    let fd = m.open(task, "/dev/input/event1").expect("open keyboard");
    m.fasync(task, fd, true).expect("fasync");
    m.key_press(30); // KEY_A
    assert_eq!(m.wait_event(task), Some(fd));
    let buf = m.alloc_buffer(task, 64).expect("buffer");
    assert_eq!(m.read(task, fd, buf, 16).expect("read"), 16);
}

// ---------------------------------------------------------------------
// Netmap
// ---------------------------------------------------------------------

/// The pkt-gen inner loop: produce up to `batch` packets, then one `poll`
/// per batch — netmap's poll performs the TX sync itself (§6.1.2: "the
/// packet generator issues one poll file operation per batch").
fn pktgen_run(m: &mut Machine, nm: &mut netmap::NetmapClient, total: u64, batch: u32) -> f64 {
    let start = m.now_ns();
    let mut sent = 0u64;
    while sent < total {
        let n = batch
            .min(nm.free_slots(m).expect("slots"))
            .min((total - sent) as u32);
        if n == 0 {
            let events = nm.poll(m).expect("poll");
            assert!(events.contains(PollEvents::OUT));
            continue;
        }
        nm.produce(m, n, 64, 50).expect("produce");
        nm.poll(m).expect("poll");
        sent += u64::from(n);
    }
    let nic_done = match m.driver("/dev/netmap").unwrap() {
        paradice::machine::DriverHandle::Netmap(d) => d.borrow().nic_busy_until_ns(),
        _ => unreachable!(),
    };
    sent as f64 / ((nic_done.max(m.now_ns()) - start) as f64 / 1e9)
}

#[test]
fn netmap_pktgen_reaches_line_rate_with_large_batches() {
    for mode in modes() {
        let mut m = machine_with(mode, DeviceSpec::Netmap);
        let task = spawn(&mut m);
        let mut nm = netmap::NetmapClient::open(&mut m, task).expect("open netmap");
        let pps = pktgen_run(&mut m, &mut nm, 50_000, 128);
        let line = netmap::line_rate_pps(64);
        assert!(pps > 0.9 * line, "{mode:?}: {pps:.0} pps vs line {line:.0}");
    }
}

#[test]
fn netmap_batch_size_controls_paradice_throughput() {
    // Figure 2's mechanism: per-poll forwarding overhead amortizes with the
    // batch size; interrupts need far bigger batches than polling.
    let run = |transport: TransportMode, batch: u32| -> f64 {
        let mut m = machine_with(
            ExecMode::Paradice {
                transport,
                data_isolation: false,
            },
            DeviceSpec::Netmap,
        );
        let task = spawn(&mut m);
        let mut nm = netmap::NetmapClient::open(&mut m, task).expect("open");
        pktgen_run(&mut m, &mut nm, 20_000, batch)
    };
    let line = netmap::line_rate_pps(64);
    // Interrupt mode: batch 1 is crippled, batch 128 approaches line rate.
    let int_1 = run(TransportMode::Interrupts, 1);
    let int_128 = run(TransportMode::Interrupts, 128);
    assert!(int_1 < 0.05 * line, "int batch 1: {int_1:.0} pps");
    assert!(int_128 > 0.85 * line, "int batch 128: {int_128:.0} pps");
    // Polling mode: batch 4 already gets close to line rate (§6.1.2).
    let poll_4 = run(TransportMode::polling_default(), 4);
    assert!(poll_4 > 0.85 * line, "poll batch 4: {poll_4:.0} pps");
    assert!(poll_4 > int_1 * 10.0);
}

#[test]
fn netmap_rx_path_delivers_generated_frames() {
    let mut m = machine_with(
        ExecMode::Paradice {
            transport: TransportMode::polling_default(),
            data_isolation: false,
        },
        DeviceSpec::Netmap,
    );
    let task = spawn(&mut m);
    let nm = netmap::NetmapClient::open(&mut m, task).expect("open");
    match m.driver("/dev/netmap").unwrap() {
        paradice::machine::DriverHandle::Netmap(d) => {
            d.borrow_mut().enable_rx_generator(64);
        }
        _ => unreachable!(),
    }
    m.clock().advance(100 * netmap::wire_ns(64));
    let delivered = m
        .ioctl(task, nm.fd, paradice::netmap_ioctl::NIOCRXSYNC, 0)
        .expect("rxsync");
    // 100 frames arrived during the wait; a few more land while the rxsync
    // ioctl itself is being forwarded.
    assert!((100..=110).contains(&delivered), "delivered = {delivered}");
}

// ---------------------------------------------------------------------
// No-op overhead microbenchmark (§6.1.1)
// ---------------------------------------------------------------------

#[test]
fn forwarding_overhead_matches_the_paper() {
    // A cheap operation (poll on an idle mouse) round-trips in ~35 µs with
    // interrupts and ~2 µs with polling (§6.1.1).
    let measure = |transport: TransportMode| -> u64 {
        let mut m = machine_with(
            ExecMode::Paradice {
                transport,
                data_isolation: false,
            },
            DeviceSpec::Mouse,
        );
        let task = spawn(&mut m);
        let fd = m.open(task, "/dev/input/event0").expect("open");
        // Warm the channel, then average many ops.
        for _ in 0..3 {
            let _ = m.poll(task, fd);
        }
        let syscall = m.hv().borrow().cost().syscall_ns;
        let dispatch = m.hv().borrow().cost().backend_dispatch_ns;
        let start = m.now_ns();
        let ops = 1000u64;
        for _ in 0..ops {
            let _ = m.poll(task, fd).expect("poll");
        }
        (m.now_ns() - start) / ops - syscall - dispatch
    };
    let with_interrupts = measure(TransportMode::Interrupts);
    let with_polling = measure(TransportMode::polling_default());
    assert!(
        (33_000..37_000).contains(&with_interrupts),
        "interrupt forward: {with_interrupts} ns (paper: ~35 µs)"
    );
    assert!(
        (1_500..2_500).contains(&with_polling),
        "polling forward: {with_polling} ns (paper: ~2 µs)"
    );
}
