//! The isolation evaluation (paper §4, §6): every attack the design claims
//! to stop is exercised against a live machine and must be blocked, with
//! the audit log crediting the right mechanism.

use paradice::app::drm::DrmClient;
use paradice::attack;
use paradice::gpu_ioctl::gem_domain;
use paradice::prelude::*;
use paradice_hypervisor::audit::BlockedBy;

fn isolated_machine() -> Machine {
    Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: true,
        })
        .guest(GuestSpec::linux())
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .device(DeviceSpec::Mouse)
        .build()
        .expect("isolated machine builds")
}

#[test]
fn the_full_attack_suite_is_blocked() {
    let mut m = isolated_machine();
    let outcomes = attack::run_all(&mut m);
    assert_eq!(outcomes.len(), 6);
    for outcome in &outcomes {
        assert!(
            outcome.blocked,
            "attack {:?} was NOT blocked: {}",
            outcome.name, outcome.detail
        );
        assert!(
            outcome.blocked_by.is_some(),
            "attack {:?} blocked but not attributed in the audit log",
            outcome.name
        );
    }
    // Each of the distinct mechanisms fired at least once.
    let audit = m.hv().borrow();
    for mechanism in [
        BlockedBy::GrantCheck,
        BlockedBy::EptProtection,
        BlockedBy::IommuRegion,
        BlockedBy::ProtectedMmio,
        BlockedBy::WaitQueueCap,
    ] {
        assert!(
            audit.audit().count_blocked_by(mechanism) > 0,
            "{mechanism} never fired"
        );
    }
}

#[test]
fn guests_cannot_see_each_others_framebuffers() {
    let mut m = isolated_machine();
    // Guest 0 renders a "secret" into its framebuffer.
    let t0 = m.spawn_process(Some(0)).unwrap();
    let drm0 = DrmClient::open(&mut m, t0).unwrap();
    let fb0 = drm0.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    let secret_va = m.alloc_buffer(t0, 64).unwrap();
    m.write_mem(t0, secret_va, b"launch-codes").unwrap();
    drm0.gem_pwrite(&mut m, fb0, 0, secret_va, 12).unwrap();

    // Guest 1 creates its own object and maps it: its pages must be from
    // its own region, never guest 0's.
    let t1 = m.spawn_process(Some(1)).unwrap();
    let drm1 = DrmClient::open(&mut m, t1).unwrap();
    let fb1 = drm1.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    let map1 = drm1.gem_map(&mut m, fb1, PAGE_SIZE).unwrap();
    let mut peek = [0u8; 12];
    m.read_mem(t1, map1, &mut peek).unwrap();
    assert_ne!(&peek, b"launch-codes", "guest 1 must not see guest 0's data");

    // Ground truth: the secret IS in guest 0's protected VRAM (device-side
    // probe) and the driver VM cannot read it.
    let driver_vm = m.driver_vm();
    let hv = m.hv().clone();
    let bar = {
        let handle = m.driver("/dev/dri/card0").unwrap();
        match handle {
            paradice::machine::DriverHandle::Gpu(gpu) => gpu.borrow().gpu().bar_base(),
            _ => unreachable!("card0 is the GPU"),
        }
    };
    // Guest 0's region starts at VRAM offset 0 and its first allocation is
    // the region's GART page, so fb0 is the second page of the lower half.
    let mut found = false;
    for page in 0..512u64 {
        let mut probe = [0u8; 12];
        if hv
            .borrow_mut()
            .gpa_read_privileged(driver_vm, bar.add(page * PAGE_SIZE), &mut probe)
            .is_ok()
            && &probe == b"launch-codes"
        {
            found = true;
            // The driver VM's own read of that page must fault.
            let mut blocked = [0u8; 12];
            assert!(hv
                .borrow_mut()
                .vm_mem_read(driver_vm, bar.add(page * PAGE_SIZE), &mut blocked)
                .is_err());
            break;
        }
    }
    assert!(found, "the secret should exist in protected VRAM");
}

#[test]
fn data_isolation_does_not_break_functionality() {
    // §6: "data isolation has no noticeable impact on performance" — and
    // none on correctness: both guests render and compute concurrently.
    let mut m = isolated_machine();
    for guest in 0..2 {
        let task = m.spawn_process(Some(guest)).unwrap();
        let drm = DrmClient::open(&mut m, task).unwrap();
        let fb = drm.gem_create(&mut m, 4 * PAGE_SIZE, gem_domain::VRAM).unwrap();
        drm.submit_render(&mut m, 1_000, fb).unwrap();
        drm.wait_idle(&mut m, fb).unwrap();
        drm.submit_compute(&mut m, 50).unwrap();
        drm.wait_idle(&mut m, fb).unwrap();
    }
    // No isolation violations in a clean run: grant checks all passed.
    assert_eq!(
        m.hv().borrow().audit().count_blocked_by(BlockedBy::GrantCheck),
        0
    );
}

#[test]
fn vram_partitioning_limits_each_guest() {
    // §4.2: "this solution partitions and shares the GPU memory between
    // guest VMs and can affect … applications that require more memory than
    // their share." Each guest gets half of the 1024-page VRAM.
    let mut m = isolated_machine();
    let task = m.spawn_process(Some(0)).unwrap();
    let drm = DrmClient::open(&mut m, task).unwrap();
    // 511 pages fit (one page of the half went to the region's GART buffer)…
    let big = drm.gem_create(&mut m, 511 * PAGE_SIZE, gem_domain::VRAM);
    assert!(big.is_ok(), "allocation within the share must work");
    // …but nothing more.
    assert_eq!(
        drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM),
        Err(Errno::Enomem)
    );
    // Without isolation, the same process could take nearly all of VRAM.
    let mut m2 = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .build()
        .unwrap();
    let task2 = m2.spawn_process(Some(0)).unwrap();
    let drm2 = DrmClient::open(&mut m2, task2).unwrap();
    assert!(drm2
        .gem_create(&mut m2, 1000 * PAGE_SIZE, gem_domain::VRAM)
        .is_ok());
}

#[test]
fn pread_of_protected_data_is_refused() {
    let mut m = isolated_machine();
    let task = m.spawn_process(Some(0)).unwrap();
    let drm = DrmClient::open(&mut m, task).unwrap();
    let bo = drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    let va = m.alloc_buffer(task, 64).unwrap();
    assert_eq!(drm.gem_pread(&mut m, bo, 0, va, 16), Err(Errno::Eperm));
}

#[test]
fn hardware_vsync_is_lost_under_isolation_but_emulation_paces() {
    // §5.3: "we cannot support the VSync interrupts … As a possible
    // solution, we are thinking of emulating the VSync interrupts in
    // software." The SET_VSYNC ioctl fails; the software pacer works.
    let mut m = isolated_machine();
    let task = m.spawn_process(Some(0)).unwrap();
    let drm = DrmClient::open(&mut m, task).unwrap();
    let scratch = m.alloc_buffer(task, 16).unwrap();
    m.write_mem(task, scratch, &1u32.to_le_bytes()).unwrap();
    assert_eq!(
        m.ioctl(task, drm.fd, paradice::gpu_ioctl::RADEON_SET_VSYNC, scratch.raw()),
        Err(Errno::Enotsup)
    );
    // Software emulation: pace 30 frames at 60 Hz.
    let fb = drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    let t0 = m.now_ns();
    for _ in 0..30 {
        drm.submit_render(&mut m, 1_000, fb).unwrap();
        drm.wait_idle(&mut m, fb).unwrap();
        m.vblank_pace();
    }
    let fps = 30.0 / ((m.now_ns() - t0) as f64 / 1e9);
    assert!((55.0..62.5).contains(&fps), "paced fps = {fps}");
}

#[test]
fn queue_cap_is_tunable_per_guest() {
    // §5.1: "we can modify this cap for different queues for better load
    // balancing or enforcing priorities between guest VMs."
    let mut m = isolated_machine();
    let backend = m.backend().unwrap();
    backend
        .borrow_mut()
        .set_queue_cap(m.guest_vms()[1], 10)
        .unwrap();
    let (outcome, accepted) = attack::wait_queue_flood(&mut m, 1, 50);
    assert!(outcome.blocked);
    assert_eq!(accepted, 10);
}

#[test]
fn fault_isolation_holds_without_data_isolation() {
    // Fault isolation needs no driver changes and is always on (§4.1).
    let mut m = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .build()
        .unwrap();
    let outcome = attack::ungranted_copy(&mut m, 0);
    assert!(outcome.blocked);
    assert_eq!(outcome.blocked_by, Some(BlockedBy::GrantCheck));
    let outcome = attack::grant_overflow(&mut m, 0);
    assert!(outcome.blocked);
}

#[test]
fn devirtualization_ablation_shows_why_grant_checks_matter() {
    // Figure 1(b): the predecessor design ran drivers without runtime
    // checks — "a malicious guest VM application can use the driver bugs to
    // compromise the whole system." With validation ablated, the attack
    // Paradice blocks is no longer refused by any security mechanism.
    let mut m = Machine::builder()
        .mode(ExecMode::Paradice {
            transport: TransportMode::Interrupts,
            data_isolation: false,
        })
        .guest(GuestSpec::linux())
        .device(DeviceSpec::gpu())
        .build()
        .unwrap();

    // Under Paradice, the ungranted copy is blocked by the grant check.
    let outcome = attack::ungranted_copy(&mut m, 0);
    assert!(outcome.blocked);
    assert_eq!(outcome.blocked_by, Some(BlockedBy::GrantCheck));

    // Ablate the checks (devirtualization) and replay the attack.
    m.enable_devirtualization_ablation();
    let audit_before = m.hv().borrow().audit().len();
    let driver_vm = m.driver_vm();
    let guest = m.guest_vms()[0];
    let bogus_grant = paradice_hypervisor::GrantRef(u32::MAX);
    let result = m.hv().borrow_mut().hc_copy_to_guest(
        driver_vm,
        guest,
        paradice_mem::GuestPhysAddr::new(0),
        GuestVirtAddr::new(0xc000_0000),
        b"rootkit",
        bogus_grant,
    );
    // No grant refusal and no audit record: the only thing that stops the
    // copy is that the target happens to be unmapped — security by
    // accident, exactly the flaw that motivated Paradice (§3.1).
    assert!(
        !matches!(result, Err(paradice_hypervisor::hv::HvError::Grant(_))),
        "grant check should be ablated: {result:?}"
    );
    assert_eq!(m.hv().borrow().audit().len(), audit_before);
}

#[test]
fn guest_recovers_after_a_queue_flood() {
    // A flooding guest hits EDQUOT; once the backend drains, the same guest
    // operates normally again — the cap is backpressure, not a ban.
    let mut m = isolated_machine();
    let (outcome, accepted) = attack::wait_queue_flood(&mut m, 0, 200);
    assert!(outcome.blocked);
    assert_eq!(accepted, m.queue_cap());
    // resume_backend ran inside the attack; normal service resumes.
    let task = m.spawn_process(Some(0)).unwrap();
    let drm = DrmClient::open(&mut m, task).expect("post-flood open");
    let fb = drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).unwrap();
    drm.submit_render(&mut m, 100, fb).unwrap();
    drm.wait_idle(&mut m, fb).unwrap();
}

#[test]
fn the_attack_suite_is_still_blocked_after_crash_and_recovery() {
    // §7.1 meets §4: a driver-VM crash followed by recovery must not leave
    // any isolation mechanism degraded — stale grants, leftover IOMMU
    // mappings, or unprotected regions would all show up here.
    use std::cell::RefCell;
    use std::rc::Rc;
    use paradice_faults::{FaultKind, FaultPlan, Trigger};

    let mut m = isolated_machine();
    let mut plan = FaultPlan::new();
    plan.arm(
        FaultKind::DriverPanic,
        Trigger::OnOp { op: "ioctl".to_owned(), nth: 0 },
    );
    assert!(m.arm_faults(Rc::new(RefCell::new(plan))));

    let task = m.spawn_process(Some(0)).unwrap();
    let drm = DrmClient::open(&mut m, task).unwrap();
    assert!(drm.gem_create(&mut m, PAGE_SIZE, gem_domain::VRAM).is_err());
    assert!(m.driver_vm_failed());
    m.recover_driver_vm().expect("driver VM reboots");

    let outcomes = attack::run_all(&mut m);
    assert_eq!(outcomes.len(), 6);
    for outcome in &outcomes {
        assert!(
            outcome.blocked,
            "post-recovery attack {:?} was NOT blocked: {}",
            outcome.name, outcome.detail
        );
    }
}
