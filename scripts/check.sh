#!/usr/bin/env sh
# Full verification sweep: build, tests, driver-IR lint, and the
# recorded-trace conformance gate. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> paradice-lint (static driver-IR suite; nonzero on errors)"
cargo run -q --release -p paradice-bench --bin paradice-lint

echo "==> trace-replay gate (record reference workload, replay it)"
TRACE="$(mktemp)"
trap 'rm -f "$TRACE"' EXIT
cargo run -q --release -p paradice-bench --bin experiments -- --trace "$TRACE"
cargo run -q --release -p paradice-bench --bin paradice-lint -- --replay "$TRACE"

echo "==> fault-injection campaign (fixed seed; nonzero on guest failure or <95% recovery)"
cargo run -q --release -p paradice-bench --bin fault-campaign -- --seed 7 --campaigns 12

echo "==> all checks passed"
