#!/usr/bin/env sh
# Full verification sweep: build, tests, driver-IR lint, and the
# recorded-trace conformance gate. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> instrumented-atomics sweep gate (no raw std::sync::atomic outside the shim)"
# Every atomic in the hypervisor must go through hypervisor::atomic so the
# MO/RC lint and the interleaving checker see the same ordering constants
# the code executes. Only the shim itself may name std::sync::atomic.
if grep -rn "std::sync::atomic" crates/hypervisor/src --include='*.rs' \
    | grep -v "^crates/hypervisor/src/atomic.rs"; then
    echo "ERROR: raw std::sync::atomic use outside crates/hypervisor/src/atomic.rs" >&2
    echo "       route it through the hypervisor::atomic instrumented shim" >&2
    exit 1
fi

echo "==> paradice-lint (static driver-IR suite; nonzero on errors)"
cargo run -q --release -p paradice-bench --bin paradice-lint

echo "==> paradice-lint --fixtures --json (seeded bugs MUST fail; output must be JSON)"
FIXJSON="$(mktemp)"
if cargo run -q --release -p paradice-bench --bin paradice-lint -- --fixtures --json \
    >"$FIXJSON" 2>&1; then
    echo "ERROR: seeded fixture bugs did not produce a nonzero exit" >&2
    rm -f "$FIXJSON"
    exit 1
fi
# Smoke the JSON shape: findings + per-pass stats must both be present.
grep -q '"findings"' "$FIXJSON" && grep -q '"stats"' "$FIXJSON" || {
    echo "ERROR: --json output missing findings/stats keys" >&2
    cat "$FIXJSON" >&2
    rm -f "$FIXJSON"
    exit 1
}
rm -f "$FIXJSON"

echo "==> paradice-verify --all (isolation-core proofs; nonzero on any disproof)"
VERIFYJSON="$(mktemp)"
cargo run -q --release -p paradice-verify --bin paradice-verify -- --all --json \
    >"$VERIFYJSON"
grep -q '"proved_all":true' "$VERIFYJSON" || {
    echo "ERROR: paradice-verify exited 0 but did not prove everything" >&2
    cat "$VERIFYJSON" >&2
    rm -f "$VERIFYJSON"
    exit 1
}
rm -f "$VERIFYJSON"

echo "==> paradice-verify --mutant (seeded bug MUST be disproved)"
if cargo run -q --release -p paradice-verify --bin paradice-verify -- \
    --all --mutant ring-window-off-by-one >/dev/null 2>&1; then
    echo "ERROR: seeded mutant ring-window-off-by-one was not disproved" >&2
    exit 1
fi

echo "==> paradice-verify --mutant (seeded ordering bug MUST be disproved)"
if cargo run -q --release -p paradice-verify --bin paradice-verify -- \
    --all --mutant aring-publish-relaxed >/dev/null 2>&1; then
    echo "ERROR: seeded mutant aring-publish-relaxed was not disproved" >&2
    exit 1
fi

echo "==> cargo kani (optional deeper proofs; skipped when kani is absent)"
if command -v cargo-kani >/dev/null 2>&1; then
    cargo kani -p paradice-hypervisor -p paradice-cvd
else
    echo "NOTICE: cargo-kani not installed; skipping the Kani harnesses" \
         "(the paradice-verify stage above remains the required gate)"
fi

echo "==> cargo miri (optional UB/race interpreter; skipped when miri is absent)"
if cargo miri --version >/dev/null 2>&1; then
    # The stress loops assert wall-clock budgets that miri's slowdown would
    # trip, so the interpreted run covers the shim and the protocol tests
    # and skips the timed stress/churn/wakeup loops.
    cargo miri test -p paradice-hypervisor -- atomic:: aring:: shards:: \
        --skip wakeup --skip churn --skip stress --skip concurrent
else
    echo "NOTICE: cargo miri not installed; skipping the interpreted run" \
         "(the race-ring/doorbell/shards proofs above remain the required gate)"
fi

echo "==> thread sanitizer (optional; needs nightly rustc with -Zsanitizer)"
if rustc --version | grep -q nightly; then
    RUSTFLAGS="-Zsanitizer=thread" cargo test -q -p paradice-hypervisor --tests
else
    echo "NOTICE: stable rustc has no -Zsanitizer=thread; skipping TSan" \
         "(the race-ring/doorbell/shards proofs above remain the required gate)"
fi

echo "==> race checker smoke (interleaving proofs + mutant sweep + MO/RC coverage)"
cargo run -q --release -p paradice-bench --bin experiments -- --race --smoke
grep -q '"all_green":true' BENCH_race.json || {
    echo "ERROR: BENCH_race.json is not all_green" >&2
    cat BENCH_race.json >&2
    exit 1
}

echo "==> trace-replay gate (record reference workload, replay it)"
TRACE="$(mktemp)"
trap 'rm -f "$TRACE"' EXIT
cargo run -q --release -p paradice-bench --bin experiments -- --trace "$TRACE"
cargo run -q --release -p paradice-bench --bin paradice-lint -- --replay "$TRACE"

echo "==> fault-injection campaign (fixed seed; nonzero on guest failure or <95% recovery)"
cargo run -q --release -p paradice-bench --bin fault-campaign -- --seed 7 --campaigns 12

echo "==> fast-path ablation smoke (no-op polled round trip vs committed baseline)"
# The ablation is deterministic virtual time, so the regenerated numbers
# should be byte-identical to the committed BENCH_fastpath.json; the gate
# allows 10% headroom on the no-op polled round trip before failing.
noop_metric() {
    grep '"noop_polled_round_trip_ns"' "$1" \
        | sed -n "s/.*\"$2\": *\([0-9][0-9]*\).*/\1/p"
}
BASE_OFF="$(noop_metric BENCH_fastpath.json off)"
BASE_ON="$(noop_metric BENCH_fastpath.json on)"
if [ -z "$BASE_OFF" ] || [ -z "$BASE_ON" ]; then
    echo "ERROR: committed BENCH_fastpath.json lacks noop_polled_round_trip_ns" >&2
    exit 1
fi
cargo run -q --release -p paradice-bench --bin experiments -- --fastpath
NEW_OFF="$(noop_metric BENCH_fastpath.json off)"
NEW_ON="$(noop_metric BENCH_fastpath.json on)"
for pair in "off $BASE_OFF $NEW_OFF" "on $BASE_ON $NEW_ON"; do
    set -- $pair
    if [ "$(( $3 * 10 ))" -gt "$(( $2 * 11 ))" ]; then
        echo "ERROR: no-op polled round trip regressed >10% ($1: ${2}ns -> ${3}ns)" >&2
        exit 1
    fi
done

echo "==> wall-clock differential test (both substrates, release)"
cargo test --release -q -p paradice-bench --test wallclock

echo "==> wall-clock substrate smoke (real ops/sec sanity thresholds)"
# Real time, so no byte-identity gate — only sanity floors loose enough
# for a loaded CI box: the threaded substrate must push at least 1k
# interactive ioctls/sec and 10k netmap TX packets/sec.
cargo run -q --release -p paradice-bench --bin experiments -- --wallclock --smoke
wall_metric() {
    grep "\"$1\"" BENCH_wallclock.json \
        | sed -n "s/.*\"$1\": *\([0-9][0-9]*\).*/\1/p"
}
WALL_IOCTL="$(wall_metric wall_interactive_ioctl_ops_per_sec)"
WALL_PPS="$(wall_metric wall_netmap_tx_pps)"
if [ -z "$WALL_IOCTL" ] || [ -z "$WALL_PPS" ]; then
    echo "ERROR: BENCH_wallclock.json lacks the wall substrate metrics" >&2
    exit 1
fi
if [ "$WALL_IOCTL" -lt 1000 ]; then
    echo "ERROR: wall substrate interactive-ioctl rate ${WALL_IOCTL}/s < 1000/s" >&2
    exit 1
fi
if [ "$WALL_PPS" -lt 10000 ]; then
    echo "ERROR: wall substrate netmap TX rate ${WALL_PPS}pps < 10000pps" >&2
    exit 1
fi

echo "==> multi-tenant scale smoke (100 guests, fair-share flood bounds)"
# Smoke sizing stands up 1/10/100 guests of mixed workloads on both
# substrates plus the 1-light-vs-99-heavy flood. Gates: 100 guests must
# stand up; the light guest's p99 under flood must stay below the
# committed bound (10 ms virtual — deterministic; 100 ms wall — loose for
# loaded CI boxes); aggregate throughput at 100 guests must retain a
# committed fraction of the device-bound 1-guest rate (the device
# serializes, so 1-guest x N is not the ideal): >=250/1000 virtual,
# >=100/1000 wall.
cargo run -q --release -p paradice-bench --bin experiments -- --scale --smoke
scale_metric() {
    grep "\"$1\"" BENCH_scale.json \
        | sed -n "s/.*\"$1\": *\([0-9][0-9]*\).*/\1/p"
}
SCALE_GUESTS="$(scale_metric max_guests)"
SCALE_VLIGHT="$(scale_metric virtual_light_p99_under_flood_ns)"
SCALE_WLIGHT="$(scale_metric wall_light_p99_under_flood_ns)"
SCALE_VFRAC="$(scale_metric virtual_throughput_fraction_x1000_at_100)"
SCALE_WFRAC="$(scale_metric wall_throughput_fraction_x1000_at_100)"
if [ -z "$SCALE_GUESTS" ] || [ -z "$SCALE_VLIGHT" ] || [ -z "$SCALE_WLIGHT" ] \
    || [ -z "$SCALE_VFRAC" ] || [ -z "$SCALE_WFRAC" ]; then
    echo "ERROR: BENCH_scale.json lacks the scale gate metrics" >&2
    exit 1
fi
if [ "$SCALE_GUESTS" -lt 100 ]; then
    echo "ERROR: scale smoke stood up only ${SCALE_GUESTS} guests (< 100)" >&2
    exit 1
fi
if [ "$SCALE_VLIGHT" -ge 10000000 ]; then
    echo "ERROR: virtual light-guest p99 under flood ${SCALE_VLIGHT}ns >= 10ms" >&2
    exit 1
fi
if [ "$SCALE_WLIGHT" -ge 100000000 ]; then
    echo "ERROR: wall light-guest p99 under flood ${SCALE_WLIGHT}ns >= 100ms" >&2
    exit 1
fi
if [ "$SCALE_VFRAC" -lt 250 ]; then
    echo "ERROR: virtual aggregate throughput at 100 guests is ${SCALE_VFRAC}/1000 of the 1-guest rate (< 250)" >&2
    exit 1
fi
if [ "$SCALE_WFRAC" -lt 100 ]; then
    echo "ERROR: wall aggregate throughput at 100 guests is ${SCALE_WFRAC}/1000 of the 1-guest rate (< 100)" >&2
    exit 1
fi

echo "==> adversary campaign smoke (fixed seeds, both substrates; zero breaches)"
# ~2000 adversarial steps total: 100 steps x 5 families x 2 substrates x
# 2 seeds. The virtual cells are bit-deterministic per seed; the gate is
# zero breaches AND nonzero detections (a campaign that detects nothing
# proved nothing).
ADVJSON="$(mktemp)"
for seed in 7 23; do
    cargo run -q --release -p paradice-adversary --bin paradice-adversary -- \
        --seed "$seed" --steps 100 --engine both --json >"$ADVJSON"
    grep -q '"pass":true' "$ADVJSON" || {
        echo "ERROR: adversary campaign (seed $seed) exited 0 without passing" >&2
        cat "$ADVJSON" >&2
        rm -f "$ADVJSON"
        exit 1
    }
done
rm -f "$ADVJSON"

echo "==> adversary vs seeded grant bypass (containment-bypass mutant MUST breach)"
if cargo run -q --release -p paradice-adversary --bin paradice-adversary -- \
    --seed 7 --steps 100 --engine virtual --mutant grant-bypass >/dev/null 2>&1; then
    echo "ERROR: the seeded grant-bypass mutant was not caught by the adversary" >&2
    exit 1
fi

echo "==> all checks passed"
